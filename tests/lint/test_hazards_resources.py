"""Unit coverage of the hazard/resource/determinism rules on synthetic plans
plus the ``lint=`` execution gate on ``GNNSystem.run``."""

import warnings
from dataclasses import replace

import numpy as np
import pytest

from repro.frameworks.tlpgnn_engine import TLPGNNEngine
from repro.graph.generators import power_law
from repro.lint import (
    Finding,
    KernelAccess,
    LintReport,
    PlanLintError,
    lint_plan,
    severity_rank,
    sort_findings,
)
from repro.lint.access import lane_stream
from repro.lint.effects import (
    BufferEffect,
    KernelEffects,
    LaunchEnvelope,
    effect_table,
)
from repro.plan import ComputeStep, ExecutionPlan, KernelOp

ENV = LaunchEnvelope(threads_per_block=128)


def _plan(ops, fingerprint=None):
    return ExecutionPlan(
        system="X", model="m", graph_name="g", pipeline_name="p",
        ops=ops,
        compute=ComputeStep(kind="reference", workload=None),
        fingerprint=fingerprint,
    )


def _op(name, effects):
    # declare a matching coalesced access table so these tests stay focused
    # on the hazard/resource/determinism rules (no incidental ACC001)
    access = None
    if effects is not None:
        access = KernelAccess(
            patterns=tuple(
                lane_stream(b.buffer, role=b.mode, row="flat")
                for b in effects.buffers
            )
        )
    return KernelOp(
        name=name, kind="modeled", analyze_fn=lambda s: None,
        effects=effects, access=access,
    )


def _rules(report):
    return {f.rule for f in report.findings}


# ----------------------------------------------------------------------
# hazard rules
# ----------------------------------------------------------------------
def test_haz001_missing_effect_table():
    report = lint_plan(_plan([_op("mystery", None)]))
    assert _rules(report) == {"HAZ001"}
    assert report.errors


def test_haz002_nonexclusive_write_without_atomic():
    racy = KernelEffects(
        buffers=(BufferEffect("out", "write", exclusive=False),), launch=ENV
    )
    report = lint_plan(_plan([_op("racer", racy)]))
    assert _rules(report) == {"HAZ002"}


def test_haz002_not_raised_for_declared_atomic_merge():
    merged = effect_table(atomics=("out",), atomic_ops=10, launch=ENV)
    report = lint_plan(_plan([_op("scatter", merged)]))
    # the atomic merge is race-free; only determinism flags it
    assert _rules(report) == {"DET001"}
    assert not report.errors


def test_haz003_use_before_def_of_transient():
    report = lint_plan(_plan([
        _op("reader", effect_table(reads=("tmp:ghost",), writes=("tmp:a",),
                                   launch=ENV)),
    ]))
    assert _rules(report) == {"HAZ003"}


def test_haz003_ordering_is_respected():
    ops = [
        _op("producer", effect_table(writes=("tmp:a",), launch=ENV)),
        _op("consumer", effect_table(reads=("tmp:a",), writes=("out",),
                                     launch=ENV)),
    ]
    assert lint_plan(_plan(ops)).ok
    assert not lint_plan(_plan(ops[::-1])).ok  # reversed: use before def


def test_haz004_rng_read_only_under_fingerprint():
    rng_op = _op("sampler", effect_table(
        writes=("out",), launch=ENV, reads_rng=True))
    fingerprinted = lint_plan(_plan([rng_op], fingerprint="abc"))
    assert "HAZ004" in _rules(fingerprinted)
    unkeyed = lint_plan(_plan([rng_op]))
    assert "HAZ004" not in _rules(unkeyed)
    assert "DET002" in _rules(unkeyed)  # still a determinism warning


# ----------------------------------------------------------------------
# resource rules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("env,rule", [
    (LaunchEnvelope(threads_per_block=2048), "RES001"),
    (LaunchEnvelope(threads_per_block=128, regs_per_thread=300), "RES002"),
    (LaunchEnvelope(threads_per_block=128, shared_mem_per_block=200_000),
     "RES003"),
    (LaunchEnvelope(threads_per_block=1024, regs_per_thread=100), "RES004"),
])
def test_resource_errors(env, rule):
    report = lint_plan(_plan([_op("k", effect_table(writes=("o",),
                                                    launch=env))]))
    assert rule in _rules(report)
    assert report.errors


def test_res005_low_occupancy_is_a_warning():
    env = LaunchEnvelope(threads_per_block=256, shared_mem_per_block=90_000)
    report = lint_plan(_plan([_op("k", effect_table(writes=("o",),
                                                    launch=env))]))
    assert _rules(report) == {"RES005"}
    assert report.warnings and not report.errors


# ----------------------------------------------------------------------
# report plumbing
# ----------------------------------------------------------------------
def test_findings_sort_errors_first():
    findings = [
        Finding(severity="info", rule="ZZZ", message="c"),
        Finding(severity="warning", rule="DET001", message="b", op="k"),
        Finding(severity="error", rule="HAZ002", message="a", op="k"),
    ]
    ordered = sort_findings(findings)
    assert [f.severity for f in ordered] == ["error", "warning", "info"]
    assert severity_rank("error") < severity_rank("warning")


def test_report_render_shapes():
    clean = LintReport(plan_label="L", findings=())
    assert clean.render() == "L: clean"
    dirty = LintReport(plan_label="L", findings=(
        Finding(severity="error", rule="HAZ002", message="boom", op="k"),
    ))
    text = dirty.render()
    assert "1 error(s)" in text and "HAZ002 @ k" in text


# ----------------------------------------------------------------------
# the run(lint=...) gate
# ----------------------------------------------------------------------
_BAD = KernelEffects(
    buffers=(BufferEffect("out", "write", exclusive=False),), launch=ENV
)


class _BrokenSystem(TLPGNNEngine):
    """TLPGNN lowering with a deliberately race-declared conv op."""

    name = "Broken"

    def _lower(self, *args, **kwargs):
        plan = super()._lower(*args, **kwargs)
        plan.ops = [replace(op, effects=_BAD) for op in plan.ops]
        return plan


@pytest.fixture
def cell():
    g = power_law(30, 90, seed=3)
    X = np.random.default_rng(4).standard_normal((30, 8)).astype(np.float32)
    return g, X


def test_run_lint_strict_raises_on_errors(cell):
    g, X = cell
    with pytest.raises(PlanLintError) as exc:
        _BrokenSystem().run("gcn", g, X, lint="strict")
    assert any(f.rule == "HAZ002" for f in exc.value.report.findings)


def test_run_lint_warn_executes_and_warns(cell):
    g, X = cell
    with pytest.warns(UserWarning, match="HAZ002"):
        res = _BrokenSystem().run("gcn", g, X, lint="warn")
    assert res.output.shape == (30, 8)


def test_run_lint_strict_passes_clean_system(cell):
    g, X = cell
    res = TLPGNNEngine().run("gcn", g, X, lint="strict")
    assert res.output.shape == (30, 8)


def test_run_lint_rejects_bad_mode(cell):
    g, X = cell
    with pytest.raises(ValueError, match="lint must be"):
        TLPGNNEngine().run("gcn", g, X, lint="definitely")
