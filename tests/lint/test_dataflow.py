"""Whole-plan dataflow verification: SHAPE/LIVE rules, liveness ranges,
the peak-footprint bound, and the ``dead_transients`` optimizer export."""

from dataclasses import replace

import pytest

from repro.gpusim.config import V100
from repro.lint import (
    KernelAccess,
    dead_transients,
    lint_plan,
    live_ranges,
    liveness_findings,
    peak_footprint,
    plan_symbols,
    shape_findings,
)
from repro.lint.access import lane_stream
from repro.lint.effects import (
    BufferEffect,
    KernelEffects,
    LaunchEnvelope,
    effect_table,
)
from repro.plan import ComputeStep, ExecutionPlan, KernelOp

ENV = LaunchEnvelope(threads_per_block=128)


class _Graph:
    def __init__(self, n, m):
        self.num_vertices = n
        self.num_edges = m


class _Workload:
    """Duck-typed workload: exactly what plan_symbols consults."""

    def __init__(self, n=8, m=20, f=4):
        self.graph = _Graph(n, m)
        self.feat_dim = f


def _plan(ops, workload=None):
    return ExecutionPlan(
        system="X", model="m", graph_name="g", pipeline_name="p",
        ops=ops,
        compute=ComputeStep(kind="reference", workload=workload),
    )


def _op(name, effects, shapes=None):
    access = None
    if effects is not None:
        access = KernelAccess(
            patterns=tuple(
                lane_stream(b.buffer, role=b.mode, row="flat")
                for b in effects.buffers
            ),
            shapes=dict(shapes or {}),
        )
    return KernelOp(
        name=name, kind="modeled", analyze_fn=lambda s: None,
        effects=effects, access=access,
    )


def _rules(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# the symbol table
# ----------------------------------------------------------------------
def test_plan_symbols_come_from_the_compute_workload():
    sym = plan_symbols(_plan([], workload=_Workload(n=10, m=30, f=16)))
    assert (sym.n, sym.m, sym.f) == (10, 30, 16)
    assert sym.render(10 * 16) == "n*f"
    assert sym.render(11) == "n+1"
    assert sym.render(30) == "m"
    assert sym.render(7) == "7"  # nothing matches: digits


def test_plan_symbols_none_without_any_workload():
    assert plan_symbols(_plan([_op("k", effect_table(writes=("o",),
                                                     launch=ENV))])) is None


# ----------------------------------------------------------------------
# SHAPE rules
# ----------------------------------------------------------------------
def test_shape001_producer_consumer_disagreement():
    ops = [
        _op("producer", effect_table(writes=("tmp:x",), launch=ENV),
            shapes={"tmp:x": (10, 1)}),
        _op("consumer", effect_table(reads=("tmp:x",), writes=("out",),
                                     launch=ENV),
            shapes={"tmp:x": (5, 1)}),
    ]
    findings = shape_findings(_plan(ops))
    assert _rules(findings) == {"SHAPE001"}
    (f,) = findings
    assert f.buffer == "tmp:x" and f.op == "consumer"


def test_shape003_under_allocated_transient():
    ops = [
        _op("producer", effect_table(writes=("tmp:x",), launch=ENV),
            shapes={"tmp:x": (10, 1)}),
        _op("consumer", effect_table(reads=("tmp:x",), writes=("out",),
                                     launch=ENV),
            shapes={"tmp:x": (20, 1)}),  # reads past the allocation
    ]
    findings = shape_findings(_plan(ops))
    assert _rules(findings) == {"SHAPE003"}


def test_shape002_dtype_narrowing_write():
    ops = [
        KernelOp(
            name="wide", kind="modeled", analyze_fn=lambda s: None,
            effects=KernelEffects(
                buffers=(BufferEffect("tmp:x", "write", dtype="f32"),),
                launch=ENV,
            ),
        ),
        KernelOp(
            name="narrow", kind="modeled", analyze_fn=lambda s: None,
            effects=KernelEffects(
                buffers=(
                    BufferEffect("tmp:x", "read", dtype="f16"),
                    BufferEffect("out", "write", dtype="f32"),
                ),
                launch=ENV,
            ),
        ),
    ]
    findings = shape_findings(_plan(ops))
    assert "SHAPE002" in _rules(findings)
    f = next(f for f in findings if f.rule == "SHAPE002")
    assert f.buffer == "tmp:x" and "f16" in f.message


def test_shape004_standard_buffer_contradicts_workload():
    wl = _Workload(n=8, m=20, f=4)
    ops = [
        _op("conv", effect_table(reads=("feat",), writes=("out",),
                                 launch=ENV),
            shapes={"out": (8, 5)}),  # workload implies (8, 4)
    ]
    findings = shape_findings(_plan(ops, workload=wl))
    assert _rules(findings) == {"SHAPE004"}
    (f,) = findings
    assert f.buffer == "out"


def test_consistent_declarations_are_clean():
    wl = _Workload(n=8, m=20, f=4)
    ops = [
        _op("producer", effect_table(reads=("feat",), writes=("tmp:x",),
                                     launch=ENV),
            shapes={"feat": (8, 4), "tmp:x": (20, 1)}),
        _op("consumer", effect_table(reads=("tmp:x",), writes=("out",),
                                     launch=ENV),
            shapes={"tmp:x": (20, 1), "out": (8, 4)}),
    ]
    assert shape_findings(_plan(ops, workload=wl)) == []


def test_shape_rules_flow_through_lint_plan():
    ops = [
        _op("producer", effect_table(writes=("tmp:x",), launch=ENV),
            shapes={"tmp:x": (10, 1)}),
        _op("consumer", effect_table(reads=("tmp:x",), writes=("out",),
                                     launch=ENV),
            shapes={"tmp:x": (20, 1)}),
    ]
    report = lint_plan(_plan(ops))
    assert any(f.rule == "SHAPE003" for f in report.findings)
    assert not report.ok


# ----------------------------------------------------------------------
# liveness, footprint, LIVE rules
# ----------------------------------------------------------------------
def _footprint_plan():
    wl = _Workload(n=8, m=20, f=4)
    ops = [
        _op("stage1", effect_table(reads=("feat",), writes=("tmp:x",),
                                   launch=ENV),
            shapes={"feat": (8, 4), "tmp:x": (20, 1)}),
        _op("stage2", effect_table(reads=("tmp:x",), writes=("out",),
                                   launch=ENV),
            shapes={"tmp:x": (20, 1), "out": (8, 4)}),
    ]
    return _plan(ops, workload=wl)


def test_live_ranges_pin_inputs_and_bound_transients():
    ranges = {r.buffer: r for r in live_ranges(_footprint_plan())}
    assert ranges["feat"].pinned and ranges["out"].pinned
    tmp = ranges["tmp:x"]
    assert not tmp.pinned
    assert (tmp.first, tmp.last) == (0, 1)
    assert tmp.bytes == 20 * 4  # f32 elements


def test_peak_footprint_counts_concurrently_live_buffers():
    report = peak_footprint(_footprint_plan())
    # feat + out pinned (8*4 elems each) + tmp:x live at both ops
    assert report.peak_bytes == (32 + 32 + 20) * 4
    assert "n*f" in report.expression and "m" in report.expression


def test_live001_over_hbm_is_an_error():
    spec = replace(V100, dram_bytes=200)  # 336 B needed
    findings = liveness_findings(_footprint_plan(), spec)
    assert _rules(findings) == {"LIVE001"}
    assert findings[0].severity == "error"


def test_live002_above_80_percent_warns():
    spec = replace(V100, dram_bytes=400)  # 336/400 = 84%
    findings = liveness_findings(_footprint_plan(), spec)
    assert _rules(findings) == {"LIVE002"}
    assert findings[0].severity == "warning"


def test_liveness_clean_with_headroom():
    assert liveness_findings(_footprint_plan(), V100) == []


# ----------------------------------------------------------------------
# the dead_transients optimizer export
# ----------------------------------------------------------------------
def test_dead_transients_spots_unconsumed_outputs():
    ops = [
        _op("useful", effect_table(writes=("tmp:a",), launch=ENV)),
        _op("wasted", effect_table(writes=("tmp:dead",), launch=ENV)),
        _op("sink", effect_table(reads=("tmp:a",), writes=("out",),
                                 launch=ENV)),
    ]
    assert dead_transients(_plan(ops)) == frozenset({"tmp:dead"})


def test_dead_transients_respects_via_indirections():
    from repro.lint.access import gather

    reader = KernelOp(
        name="gatherer", kind="modeled", analyze_fn=lambda s: None,
        effects=effect_table(reads=("feat",), writes=("out",), launch=ENV),
        access=KernelAccess(
            patterns=(
                gather("feat", via="tmp:idx"),
                lane_stream("out", role="write", row="flat"),
            )
        ),
    )
    ops = [_op("indexer", effect_table(writes=("tmp:idx",), launch=ENV)),
           reader]
    # tmp:idx is consumed as an indirection index, so it is NOT dead
    assert dead_transients(_plan(ops)) == frozenset()


def test_die_pass_removes_only_liveness_proven_dead_ops():
    from repro.opt.passes import PassContext
    from repro.opt.rewrites import DeadIntermediateElimination

    ops = [
        _op("wasted", effect_table(writes=("tmp:dead",), launch=ENV)),
        _op("useful", effect_table(writes=("tmp:a",), launch=ENV)),
        _op("sink", effect_table(reads=("tmp:a",), writes=("out",),
                                 launch=ENV)),
    ]
    plan = _plan(ops)
    rewritten = DeadIntermediateElimination().apply(
        plan, PassContext(spec=V100)
    )
    assert rewritten is not None
    assert [op.name for op in rewritten.ops] == ["useful", "sink"]


def test_die_pass_cascades_through_orphaned_chains():
    from repro.opt.passes import PassContext
    from repro.opt.rewrites import DeadIntermediateElimination

    ops = [
        _op("a", effect_table(writes=("tmp:1",), launch=ENV)),
        _op("b", effect_table(reads=("tmp:1",), writes=("tmp:2",),
                              launch=ENV)),
        _op("sink", effect_table(reads=(), writes=("out",), launch=ENV)),
    ]
    plan = _plan(ops)
    rewritten = DeadIntermediateElimination().apply(
        plan, PassContext(spec=V100)
    )
    assert rewritten is not None
    # tmp:2 unread -> b dies; that orphans tmp:1 -> a dies too
    assert [op.name for op in rewritten.ops] == ["sink"]


# ----------------------------------------------------------------------
# golden integration: an ill-shaped "user spec" lowering is caught
# ----------------------------------------------------------------------
def test_ill_shaped_lowering_is_flagged_where_valid_one_is_clean():
    wl = _Workload(n=6, m=14, f=8)
    good = [
        _op("stage", effect_table(reads=("feat",), writes=("out",),
                                  launch=ENV),
            shapes={"feat": (6, 8), "out": (6, 8)}),
    ]
    assert shape_findings(_plan(good, workload=wl)) == []
    bad = [
        _op("stage", effect_table(reads=("feat",), writes=("out",),
                                  launch=ENV),
            shapes={"feat": (6, 8), "out": (14, 1)}),  # edge-major output
    ]
    assert _rules(shape_findings(_plan(bad, workload=wl))) == {"SHAPE004"}


@pytest.mark.parametrize("dtype,width", [("f64", 8), ("f16", 2), ("i8", 1)])
def test_dtype_width_table(dtype, width):
    from repro.lint.dataflow import DTYPE_BYTES

    assert DTYPE_BYTES[dtype] == width
