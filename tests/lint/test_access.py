"""Unit coverage of the symbolic access IR: pattern validation, the
sector-class classifier, the ACC/DIV/OOB analyses on synthetic plans, and
the finding-code registry they share."""

import numpy as np
import pytest

from repro.graph.generators import power_law
from repro.lint import lint_plan
from repro.lint.access import (
    SECTOR_CLASSES,
    AccessPattern,
    Affine,
    KernelAccess,
    access_findings,
    broadcast,
    conv_access,
    conv_shapes,
    gather,
    lane_stream,
    op_sector_class,
    scatter,
    sector_class,
)
from repro.lint.effects import LaunchEnvelope, effect_table
from repro.lint.registry import RULES, explain, make_finding, rule_info
from repro.lint.report import SEVERITIES
from repro.models import build_conv
from repro.models.convspec import ConvWorkload
from repro.plan import ComputeStep, ExecutionPlan, KernelOp

ENV = LaunchEnvelope(threads_per_block=128)


def _plan(ops):
    return ExecutionPlan(
        system="X", model="m", graph_name="g", pipeline_name="p",
        ops=ops,
        compute=ComputeStep(kind="reference", workload=None),
    )


def _op(name, effects, access):
    return KernelOp(
        name=name, kind="modeled", analyze_fn=lambda s: None,
        effects=effects, access=access,
    )


def _rules(findings):
    return {f.rule for f in findings}


@pytest.fixture(scope="module")
def workload():
    g = power_law(16, 48, seed=3)
    X = np.random.default_rng(0).standard_normal((16, 8)).astype(np.float32)
    return ConvWorkload(graph=g, X=X, reduce="sum")


# ----------------------------------------------------------------------
# IR validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    {"role": "mutate"},
    {"row": "diagonal"},
    {"row": "indirect"},  # indirect without via
    {"trips": ("degree", "spins")},
    {"trips_per": "block"},
    {"lanes": 0},
    {"lanes": 64},
])
def test_pattern_rejects_invalid_fields(kwargs):
    with pytest.raises(ValueError):
        AccessPattern("feat", **kwargs)


def test_constructors_produce_expected_shapes():
    b = broadcast("indptr")
    assert b.col == Affine() and sector_class(b) == "broadcast"
    ls = lane_stream("feat", trips=("feat_rounds",), lanes=16)
    assert ls.col == Affine(lane=1, iter=16)  # round advance = lane count
    g = gather("feat", via="indices")
    assert g.row_per_lane and g.row == "indirect"
    sc = scatter("out", via="indices", trips=("feat_rounds",))
    assert sc.role == "atomic" and sc.row == "indirect"
    assert abs(sc.col.lane) == 1  # lane-coalesced request, scattered rows


# ----------------------------------------------------------------------
# sector classification
# ----------------------------------------------------------------------
def test_sector_class_ladder():
    assert sector_class(broadcast("indptr")) == "broadcast"
    assert sector_class(lane_stream("feat")) == "coalesced"
    assert sector_class(AccessPattern("feat", col=Affine(lane=2))) == "strided"
    assert sector_class(gather("feat", via="indices")) == "gather"


def test_lane_unit_row_pitch_is_the_stride():
    # thread-per-vertex output walk: each lane owns a row, so the per-lane
    # address stride is the row pitch — strided unless rows are 1 wide
    p = AccessPattern("out", role="write", row="lane_unit", col=Affine(iter=1))
    assert sector_class(p, {"out": (16, 32)}) == "strided"
    assert sector_class(p, {"out": (16, 1)}) == "coalesced"


def test_op_sector_class_is_the_worst_pattern():
    acc = KernelAccess(patterns=(
        broadcast("indptr"),
        lane_stream("out", role="write"),
        gather("feat", via="indices"),
    ))
    assert op_sector_class(acc) == "gather"
    assert SECTOR_CLASSES.index("gather") == len(SECTOR_CLASSES) - 1


def test_conv_shapes_follow_the_workload(workload):
    shapes = conv_shapes(workload)
    n, E = workload.graph.num_vertices, workload.graph.num_edges
    assert shapes["feat"] == (n, 8) and shapes["indices"] == (E, 1)
    assert "att" not in shapes and "edge_vals" not in shapes
    gat = build_conv(
        "gat", workload.graph, workload.X, rng=np.random.default_rng(1)
    )
    assert conv_shapes(gat)["att"] == (n, 2)


# ----------------------------------------------------------------------
# ACC / DIV findings
# ----------------------------------------------------------------------
def test_acc001_missing_table_and_missing_pattern(workload):
    eff = effect_table(reads=("feat",), writes=("out",), launch=ENV)
    no_table = access_findings(_plan([_op("bare", eff, None)]))
    assert _rules(no_table) == {"ACC001"}
    partial = conv_access(workload, lane_stream("feat", lanes=8))  # no write
    missing = access_findings(_plan([_op("half", eff, partial)]))
    assert [(f.rule, f.buffer) for f in missing] == [("ACC001", "out")]


def test_acc002_gather_read(workload):
    eff = effect_table(reads=("feat",), writes=("out",), launch=ENV)
    acc = conv_access(
        workload,
        gather("feat", via="indices"),
        lane_stream("out", role="write", lanes=8),
    )
    found = access_findings(_plan([_op("k", eff, acc)]))
    assert [(f.rule, f.buffer) for f in found] == [("ACC002", "feat")]


def test_acc003_strided_read_and_write(workload):
    eff = effect_table(reads=("feat",), writes=("out",), launch=ENV)
    acc = conv_access(
        workload,
        AccessPattern("feat", col=Affine(lane=4)),
        AccessPattern("out", role="write", col=Affine(lane=4)),
    )
    found = access_findings(_plan([_op("k", eff, acc)]))
    assert [(f.rule, f.buffer) for f in found if f.rule == "ACC003"] == [
        ("ACC003", "feat"), ("ACC003", "out"),
    ]


def test_acc004_scattered_atomic(workload):
    eff = effect_table(reads=("feat",), atomics=("out",), atomic_ops=1,
                       launch=ENV)
    acc = conv_access(
        workload,
        lane_stream("feat", lanes=8),
        scatter("out", via="indices", lanes=8),
    )
    found = access_findings(_plan([_op("k", eff, acc)]))
    assert [(f.rule, f.buffer) for f in found] == [("ACC004", "out")]


def test_div001_per_lane_degree_loop(workload):
    eff = effect_table(reads=("feat",), writes=("out",), launch=ENV)
    acc = conv_access(
        workload,
        gather("feat", via="indices", trips=("degree",), per="lane"),
        lane_stream("out", role="write", lanes=8),
    )
    found = access_findings(_plan([_op("k", eff, acc)]))
    assert "DIV001" in _rules(found)
    # the same loop per *unit* is load imbalance, not divergence
    acc_u = conv_access(
        workload,
        gather("feat", via="indices", trips=("degree",), per="unit"),
        lane_stream("out", role="write", lanes=8),
    )
    assert "DIV001" not in _rules(access_findings(_plan([_op("k", eff, acc_u)])))


def test_div002_tail_masked_rounds(workload):
    # F=8 against 32 lanes: every round is a tail round
    eff = effect_table(reads=("feat",), writes=("out",), launch=ENV)
    acc = conv_access(
        workload,
        lane_stream("feat", trips=("feat_rounds",)),
        lane_stream("out", role="write", lanes=8),
    )
    found = access_findings(_plan([_op("k", eff, acc)]))
    div = [f for f in found if f.rule == "DIV002"]
    assert div and div[0].severity == "info"
    # 8 lanes cover the 8-wide rows exactly: no masking
    acc16 = conv_access(
        workload,
        lane_stream("feat", lanes=8, trips=("feat_rounds",)),
        lane_stream("out", role="write", lanes=8),
    )
    assert "DIV002" not in _rules(access_findings(_plan([_op("k", eff, acc16)])))


# ----------------------------------------------------------------------
# OOB bounds verification
# ----------------------------------------------------------------------
def test_oob001_flat_span_overrun(workload):
    E = workload.graph.num_edges
    eff = effect_table(reads=("indices",), writes=("out",), launch=ENV)
    acc = conv_access(
        workload,
        AccessPattern("indices", row="flat", col=Affine(lane=1), span=E + 1),
        lane_stream("out", role="write", lanes=8),
    )
    found = access_findings(_plan([_op("k", eff, acc)]))
    assert [(f.rule, f.buffer) for f in found] == [("OOB001", "indices")]


def test_oob001_unit_row_overrun():
    acc = KernelAccess(
        patterns=(lane_stream("out", role="write"),),
        shapes={"out": (10, 32)},
        unit_rows=11,
    )
    eff = effect_table(writes=("out",), launch=ENV)
    found = access_findings(_plan([_op("k", eff, acc)]))
    assert _rules(found) == {"OOB001"}


def test_oob001_indirect_value_range(workload):
    acc = KernelAccess(
        patterns=(lane_stream("feat", row="indirect", via="indices"),),
        shapes={"feat": (10, 32)},
        unit_rows=10,
        value_ranges={"indices": 11},  # CSR contract violated
    )
    eff = effect_table(reads=("feat",), launch=ENV)
    found = access_findings(_plan([_op("k", eff, acc)]))
    assert _rules(found) == {"OOB001"}
    # an undeclared value range cannot be verified: no finding
    acc_unknown = KernelAccess(
        patterns=acc.patterns, shapes=acc.shapes, unit_rows=10,
    )
    assert not access_findings(_plan([_op("k", eff, acc_unknown)]))


def test_oob001_column_expression_overrun(workload):
    # const+1 shifts the full feature sweep one element past the row end
    eff = effect_table(reads=("feat",), writes=("out",), launch=ENV)
    acc = conv_access(
        workload,
        AccessPattern("feat", col=Affine(const=1, lane=1, iter=32),
                      trips=("feat_rounds",)),
        lane_stream("out", role="write", lanes=8),
    )
    found = access_findings(_plan([_op("k", eff, acc)]))
    assert ("OOB001", "feat") in {(f.rule, f.buffer) for f in found}


def test_undeclared_shapes_skip_bounds(workload):
    # transients of modeled pipelines have no declared extent
    eff = effect_table(reads=("tmp:x",), writes=("tmp:y",), launch=ENV)
    acc = KernelAccess(patterns=(
        lane_stream("tmp:x", row="flat", span=10**9),
        lane_stream("tmp:y", role="write", row="flat"),
    ))
    assert not access_findings(_plan([_op("k", eff, acc)]))


def test_clean_conv_table_yields_no_findings(workload):
    eff = effect_table(
        reads=("indptr", "indices", "feat"), writes=("out",), launch=ENV
    )
    acc = conv_access(
        workload,
        broadcast("indptr"),
        broadcast("indices", trips=("degree",)),
        lane_stream("feat", row="indirect", via="indices", lanes=8,
                    trips=("degree", "feat_rounds")),
        lane_stream("out", role="write", lanes=8, trips=("feat_rounds",)),
    )
    report = lint_plan(_plan([_op("k", eff, acc)]))
    assert not report.findings, report.render()


# ----------------------------------------------------------------------
# the finding-code registry
# ----------------------------------------------------------------------
def test_registry_covers_every_family():
    codes = set(RULES)
    for prefix in ("HAZ", "RES", "DET", "ACC", "DIV", "OOB"):
        assert any(c.startswith(prefix) for c in codes), prefix
    for info in RULES.values():
        assert info.severity in SEVERITIES
        assert info.summary and info.anchor


def test_make_finding_severity_comes_from_the_table():
    assert make_finding("OOB001", "m").severity == "error"
    assert make_finding("ACC002", "m", op="k", buffer="b").severity == "warning"
    assert make_finding("DIV002", "m").severity == "info"
    with pytest.raises(KeyError):
        make_finding("ZZZ999", "m")


def test_explain_renders_code_severity_and_anchor():
    text = explain("ACC004")
    assert text.startswith("ACC004 [warning]")
    assert "README.md#" + rule_info("ACC004").anchor in text


def test_access_summary_lists_per_buffer_classes(workload):
    acc = conv_access(
        workload,
        broadcast("indptr"),
        gather("feat", via="indices"),
    )
    s = acc.summary()
    assert "indptr:broadcast" in s and "feat:gather" in s
    assert KernelAccess().summary() == "no declared access"
    assert acc.for_buffer("feat", "read") == (acc.patterns[1],)
