"""Every registered finding code is documented, producible, and
round-trips through the machine-readable output.

Parametrized over ``repro.lint.registry.RULES``: each code must

(a) appear in the README finding-code tables,
(b) be produced by at least one synthetic fixture in this file, and
(c) round-trip through the ``lint --json`` row encoding with the
    registry's severity.
"""

import json
import pathlib
from dataclasses import replace

import pytest

from repro.gpusim.config import V100
from repro.lint import (
    RULES,
    KernelAccess,
    ScheduledPlan,
    StreamSchedule,
    access_findings,
    determinism_findings,
    finding_rows,
    hazard_findings,
    lint_plan,
    liveness_findings,
    race_findings,
    resource_findings,
    rule_info,
    shape_findings,
)
from repro.lint.access import Affine, AccessPattern, gather, lane_stream
from repro.lint.effects import (
    BufferEffect,
    KernelEffects,
    LaunchEnvelope,
    effect_table,
)
from repro.plan import ComputeStep, ExecutionPlan, KernelOp
from repro.verify import (
    ORDER_EXACT,
    ORDER_FLOAT_SUM,
    EquivalenceCertificate,
    PlanNormalForm,
    ProducerTerm,
    decide_equivalence,
    normalize_plan,
    verify_certificate,
)

README = pathlib.Path(__file__).resolve().parents[2] / "README.md"
ENV = LaunchEnvelope(threads_per_block=128)


def _plan(ops, workload=None, fingerprint=None):
    return ExecutionPlan(
        system="X", model="m", graph_name="g", pipeline_name="p",
        ops=ops,
        compute=ComputeStep(kind="reference", workload=workload),
        fingerprint=fingerprint,
    )


def _op(name, effects, access=None, shapes=None):
    if access is None and effects is not None:
        access = KernelAccess(
            patterns=tuple(
                lane_stream(b.buffer, role=b.mode, row="flat")
                for b in effects.buffers
            ),
            shapes=dict(shapes or {}),
        )
    return KernelOp(
        name=name, kind="modeled", analyze_fn=lambda s: None,
        effects=effects, access=access,
    )


class _Graph:
    def __init__(self, n, m):
        self.num_vertices = n
        self.num_edges = m


class _Workload:
    def __init__(self, n=8, m=20, f=4):
        self.graph = _Graph(n, m)
        self.feat_dim = f


# ----------------------------------------------------------------------
# one producing fixture per registered code
# ----------------------------------------------------------------------
def _haz001():
    return hazard_findings(_plan([_op("bare", None)]))


def _haz002():
    racy = KernelEffects(
        buffers=(BufferEffect("out", "write", exclusive=False),),
        launch=ENV,
    )
    return hazard_findings(_plan([_op("scatter", racy)]))


def _haz003():
    return hazard_findings(_plan([
        _op("reader", effect_table(reads=("tmp:never",), writes=("out",),
                                   launch=ENV)),
    ]))


def _haz004():
    return hazard_findings(_plan(
        [_op("drop", effect_table(writes=("out",), launch=ENV,
                                  reads_rng=True))],
        fingerprint="abc123",
    ))


def _res(env):
    return resource_findings(
        _plan([_op("k", effect_table(writes=("out",), launch=env))]), V100
    )


def _det001():
    return determinism_findings(_plan([
        _op("merge", effect_table(atomics=("out",), launch=ENV)),
    ]))


def _det002():
    return determinism_findings(_plan([
        _op("drop", effect_table(writes=("out",), launch=ENV,
                                 reads_rng=True)),
    ]))


def _acc001():
    # effects declared, no access table at all
    op = KernelOp(
        name="blind", kind="modeled", analyze_fn=lambda s: None,
        effects=effect_table(writes=("out",), launch=ENV), access=None,
    )
    return access_findings(_plan([op]))


def _acc002():
    access = KernelAccess(patterns=(
        gather("feat", via="indices"),
        lane_stream("out", role="write", row="flat"),
    ))
    op = _op("gatherer", effect_table(reads=("feat",), writes=("out",),
                                      launch=ENV), access=access)
    return access_findings(_plan([op]))


def _acc003():
    strided = AccessPattern(
        buffer="feat", role="read", row="unit",
        col=Affine(const=0, lane=4, iter=1), lanes=32,
    )
    access = KernelAccess(patterns=(
        strided, lane_stream("out", role="write", row="flat"),
    ))
    op = _op("strided", effect_table(reads=("feat",), writes=("out",),
                                     launch=ENV), access=access)
    return access_findings(_plan([op]))


def _acc004():
    scatter = AccessPattern(
        buffer="out", role="atomic", row="indirect", via="indices",
        col=Affine(const=0, lane=1, iter=0), lanes=32,
    )
    access = KernelAccess(patterns=(scatter,))
    op = _op("scatter", effect_table(atomics=("out",), launch=ENV),
             access=access)
    return access_findings(_plan([op]))


def _div001():
    access = KernelAccess(patterns=(
        gather("feat", via="indices", trips=("degree",), per="lane"),
        lane_stream("out", role="write", row="flat"),
    ))
    op = _op("degree_loop", effect_table(reads=("feat",), writes=("out",),
                                         launch=ENV), access=access)
    return access_findings(_plan([op]))


def _div002():
    tiled = AccessPattern(
        buffer="feat", role="read", row="unit",
        col=Affine(const=0, lane=1, iter=32), lanes=32,
        trips=("edge_tiles",), trips_per="unit",
    )
    access = KernelAccess(patterns=(
        tiled, lane_stream("out", role="write", row="flat"),
    ))
    op = _op("tiled", effect_table(reads=("feat",), writes=("out",),
                                   launch=ENV), access=access)
    return access_findings(_plan([op]))


def _oob001():
    access = KernelAccess(
        patterns=(
            lane_stream("out", role="write", row="flat", span=1000),
        ),
        shapes={"out": (10, 10)},  # 100 elements < span 1000
    )
    op = _op("runaway", effect_table(writes=("out",), launch=ENV),
             access=access)
    return access_findings(_plan([op]))


def _shape001():
    return shape_findings(_plan([
        _op("producer", effect_table(writes=("tmp:x",), launch=ENV),
            shapes={"tmp:x": (10, 1)}),
        _op("consumer", effect_table(reads=("tmp:x",), writes=("out",),
                                     launch=ENV),
            shapes={"tmp:x": (5, 1)}),
    ]))


def _shape002():
    ops = [
        KernelOp(
            name="wide", kind="modeled", analyze_fn=lambda s: None,
            effects=KernelEffects(
                buffers=(BufferEffect("tmp:x", "write", dtype="f32"),),
                launch=ENV,
            ),
        ),
        KernelOp(
            name="narrow", kind="modeled", analyze_fn=lambda s: None,
            effects=KernelEffects(
                buffers=(BufferEffect("tmp:x", "read", dtype="f16"),
                         BufferEffect("out", "write", dtype="f32")),
                launch=ENV,
            ),
        ),
    ]
    return shape_findings(_plan(ops))


def _shape003():
    return shape_findings(_plan([
        _op("producer", effect_table(writes=("tmp:x",), launch=ENV),
            shapes={"tmp:x": (10, 1)}),
        _op("consumer", effect_table(reads=("tmp:x",), writes=("out",),
                                     launch=ENV),
            shapes={"tmp:x": (20, 1)}),
    ]))


def _shape004():
    return shape_findings(_plan(
        [_op("conv", effect_table(reads=("feat",), writes=("out",),
                                  launch=ENV),
             shapes={"out": (8, 5)})],
        workload=_Workload(n=8, m=20, f=4),
    ))


def _live_plan():
    return _plan(
        [_op("conv", effect_table(reads=("feat",), writes=("out",),
                                  launch=ENV),
             shapes={"feat": (8, 4), "out": (8, 4)})],
        workload=_Workload(n=8, m=20, f=4),
    )


def _live001():
    return liveness_findings(_live_plan(), replace(V100, dram_bytes=100))


def _live002():
    return liveness_findings(_live_plan(), replace(V100, dram_bytes=300))


def _race_schedule(effects_a, effects_b, shared):
    def entry(name, effects, stream, label):
        return ScheduledPlan(
            _plan([_op(name, effects)]), stream=stream, label=label,
            shared=frozenset(shared),
        )

    return StreamSchedule(
        entries=(entry("a_op", effects_a, 0, "a"),
                 entry("b_op", effects_b, 1, "b")),
        num_streams=2,
    )


def _race001():
    eff = effect_table(writes=("shared_out", "out"), launch=ENV)
    return race_findings(_race_schedule(eff, eff, {"shared_out"}))


def _race002():
    return race_findings(_race_schedule(
        effect_table(reads=("stats",), writes=("out",), launch=ENV),
        effect_table(writes=("stats", "out2"), launch=ENV),
        {"stats"},
    ))


def _race003():
    eff = effect_table(atomics=("hist",), writes=("out",), launch=ENV)
    return race_findings(_race_schedule(eff, eff, {"hist"}))


class _VGraph:
    """Duck-typed graph for normalize_plan (content fingerprint only)."""

    def fingerprint(self):
        return "cafe" * 16


class _VWorkload:
    """Duck-typed ConvWorkload slice the normal form reads."""

    attention = None
    edge_weights = None
    self_coeff = None
    reduce = "sum"
    graph = _VGraph()
    X = [[0.0, 1.0], [2.0, 3.0]]


def _term(**overrides):
    base = dict(
        buffer="out", graph="g" * 64, feature="f" * 64,
        scale=("unit",), self_term=None, reduce="sum",
        output_perm=None, sources=("feat", "graph"),
        ordering=ORDER_EXACT,
    )
    base.update(overrides)
    return ProducerTerm(**base)


def _nf(term):
    return PlanNormalForm(label="X/m on g", terms=(term,))


def _eq001():
    # an op with no effect table obstructs the dataflow closure
    return normalize_plan(
        _plan([_op("bare", None)], workload=_VWorkload())
    ).findings


def _eq002():
    # same plan shape, different feature matrix -> diverging producer term
    return decide_equivalence(
        _nf(_term()), _nf(_term(feature="e" * 64))
    ).findings


def _eq003():
    # identical semantics, atomic float merge on one side only
    return decide_equivalence(
        _nf(_term()), _nf(_term(ordering=ORDER_FLOAT_SUM))
    ).findings


def _eq004():
    cert = EquivalenceCertificate(
        subject="X/m on g", reference="X/m on g",
        subject_digest="a" * 64, reference_digest="a" * 64,
        verdict="equal",
    ).as_dict()
    cert["verdict"] = "equivalent-unordered"  # hand-edit: address now lies
    return verify_certificate(cert)


FIXTURES = {
    "HAZ001": _haz001,
    "HAZ002": _haz002,
    "HAZ003": _haz003,
    "HAZ004": _haz004,
    "RES001": lambda: _res(LaunchEnvelope(threads_per_block=2048)),
    "RES002": lambda: _res(LaunchEnvelope(threads_per_block=128,
                                          regs_per_thread=300)),
    "RES003": lambda: _res(LaunchEnvelope(threads_per_block=128,
                                          shared_mem_per_block=200_000)),
    "RES004": lambda: _res(LaunchEnvelope(threads_per_block=1024,
                                          regs_per_thread=100)),
    "RES005": lambda: _res(LaunchEnvelope(threads_per_block=256,
                                          shared_mem_per_block=90_000)),
    "DET001": _det001,
    "DET002": _det002,
    "ACC001": _acc001,
    "ACC002": _acc002,
    "ACC003": _acc003,
    "ACC004": _acc004,
    "DIV001": _div001,
    "DIV002": _div002,
    "OOB001": _oob001,
    "SHAPE001": _shape001,
    "SHAPE002": _shape002,
    "SHAPE003": _shape003,
    "SHAPE004": _shape004,
    "LIVE001": _live001,
    "LIVE002": _live002,
    "RACE001": _race001,
    "RACE002": _race002,
    "RACE003": _race003,
    "EQ001": _eq001,
    "EQ002": _eq002,
    "EQ003": _eq003,
    "EQ004": _eq004,
}

CODES = sorted(RULES)


def test_every_code_has_a_fixture_and_vice_versa():
    assert set(FIXTURES) == set(RULES)


@pytest.mark.parametrize("code", CODES)
def test_code_documented_in_readme(code):
    text = README.read_text()
    assert f"`{code}`" in text, f"{code} missing from README tables"
    # the registry's doc anchor must resolve to a real README heading
    anchor = rule_info(code).anchor
    headings = {
        "".join(c for c in line.lstrip("#").strip().lower()
                if c.isalnum() or c in " -").replace(" ", "-")
        for line in text.splitlines() if line.startswith("#")
    }
    assert anchor in headings, f"anchor #{anchor} not a README heading"


@pytest.mark.parametrize("code", CODES)
def test_fixture_produces_the_code(code):
    findings = FIXTURES[code]()
    produced = {f.rule for f in findings}
    assert code in produced, f"fixture for {code} produced {produced or '{}'}"
    f = next(f for f in findings if f.rule == code)
    assert f.severity == RULES[code].severity


@pytest.mark.parametrize("code", CODES)
def test_code_round_trips_through_json_rows(code):
    findings = [f for f in FIXTURES[code]() if f.rule == code]
    rows = json.loads(json.dumps(finding_rows("fixture/plan", findings)))
    assert rows, f"no JSON rows for {code}"
    for row in rows:
        assert set(row) == {"plan", "code", "severity", "op", "buffer",
                            "message"}
        assert row["code"] == code
        assert row["severity"] == RULES[code].severity
        assert row["plan"] == "fixture/plan"


def test_lint_plan_report_is_json_serializable_end_to_end():
    plan = _plan([
        _op("producer", effect_table(writes=("tmp:x",), launch=ENV),
            shapes={"tmp:x": (10, 1)}),
        _op("consumer", effect_table(reads=("tmp:x",), writes=("out",),
                                     launch=ENV),
            shapes={"tmp:x": (20, 1)}),
    ])
    report = lint_plan(plan)
    rows = json.loads(json.dumps(
        finding_rows(report.plan_label, report.findings)
    ))
    assert any(r["code"] == "SHAPE003" for r in rows)
