"""Static sector classes must agree with the measured memory models.

``cross_validate_access`` triangulates every ConvKernel's declared access
table against its two measured models: a statically *coalesced* kernel
must measure at or under ``COALESCED_SPR_MAX`` sectors/request in both
the vectorized counter model and the exact micro-simulator, and a
statically *uncoalesced* one must show excess sectors or masked lanes.
F=32 keeps the feature sweep aligned to full warps so the comparison is
about access shape, not tail effects.
"""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, power_law
from repro.kernels.edge_centric import EdgeCentricKernel
from repro.kernels.edge_parallel_warp import EdgeParallelWarpKernel
from repro.kernels.neighbor_group import NeighborGroupKernel
from repro.kernels.pull_cta import PullCTAKernel
from repro.kernels.pull_thread import PullThreadKernel
from repro.kernels.push import PushKernel
from repro.kernels.tlpgnn import TLPGNNKernel
from repro.lint.access import (
    access_findings,
    cross_validate_access,
    op_sector_class,
)
from repro.models import build_conv
from repro.models.convspec import ConvWorkload
from repro.plan import plan_for_kernel

KERNELS = [
    TLPGNNKernel(),
    TLPGNNKernel(assignment="hardware"),
    PushKernel(),
    EdgeCentricKernel(),
    NeighborGroupKernel(group_size=3),
    NeighborGroupKernel(group_size=8),
    PullThreadKernel(),
    PullCTAKernel(),
    EdgeParallelWarpKernel(),
]

GRAPHS = {
    "er": erdos_renyi(30, 90, seed=5),
    "power_law": power_law(24, 72, seed=2),
}


def _workloads(graph):
    rng = np.random.default_rng(5)
    X = rng.standard_normal((graph.num_vertices, 32)).astype(np.float32)
    return {
        "plain": ConvWorkload(graph=graph, X=X, reduce="sum"),
        "weighted": ConvWorkload(
            graph=graph,
            X=X,
            edge_weights=rng.random(graph.num_edges).astype(np.float32),
            reduce="sum",
        ),
        "gat": build_conv("gat", graph, X, rng=rng),
    }


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
@pytest.mark.parametrize("gname", sorted(GRAPHS))
@pytest.mark.parametrize("which", ["plain", "weighted", "gat"])
def test_static_class_matches_measured_models(kernel, gname, which):
    workload = _workloads(GRAPHS[gname])[which]
    if not kernel.supports(workload):
        pytest.skip(f"{kernel.name} does not support this workload")
    assert cross_validate_access(kernel, workload) == []


# the Figure 7 story, statically: warp-per-vertex designs issue coalesced
# feature traffic, thread-per-vertex pulls and per-lane-edge gathers do not
COALESCED = {"tlpgnn", "push", "edge_centric", "neighbor_group", "pull_cta"}
GATHERING = {"pull_thread", "edge_parallel_warp"}


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
def test_declared_sector_class_per_kernel(kernel):
    workload = _workloads(GRAPHS["power_law"])["plain"]
    cls = op_sector_class(kernel.access_patterns(workload))
    base = kernel.name.split("[")[0]
    if base in GATHERING:
        assert cls == "gather", kernel.name
    else:
        assert base in COALESCED, f"unclassified kernel {kernel.name}"
        assert cls in ("broadcast", "coalesced"), (kernel.name, cls)


def test_tlpgnn_is_statically_clean():
    """The paper's design produces zero access findings at warp-wide F."""
    for which in ("plain", "weighted", "gat"):
        workload = _workloads(GRAPHS["power_law"])[which]
        plan = plan_for_kernel(TLPGNNKernel(), workload)
        assert access_findings(plan) == [], which


@pytest.mark.parametrize("kernel,rules", [
    (PushKernel(), {"ACC004"}),
    (EdgeCentricKernel(), {"ACC004"}),
    (PullThreadKernel(), {"ACC002", "ACC003", "DIV001"}),
    (EdgeParallelWarpKernel(), {"ACC002"}),
], ids=lambda v: v.name if hasattr(v, "name") else "")
def test_scatter_and_pull_designs_are_flagged(kernel, rules):
    workload = _workloads(GRAPHS["power_law"])["plain"]
    plan = plan_for_kernel(kernel, workload)
    found = {f.rule for f in access_findings(plan)}
    assert rules <= found, (kernel.name, found)
    assert "OOB001" not in found and "ACC001" not in found, found
