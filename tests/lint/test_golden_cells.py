"""Static lint over every golden regression cell.

The 24 cells of ``tests/data/golden_plan_refactor.json`` are the
pre-refactor contract: lowering each supported cell must produce a plan
with **zero error-severity findings**, TLPGNN plans must be completely
clean (the paper's atomic-free claim), and the push-style baselines must
carry exactly the atomic-merge warnings Figure 8 charts.
"""

import json
from pathlib import Path

import pytest

from repro.bench.harness import BenchConfig, get_dataset, make_features
from repro.frameworks import SYSTEMS
from repro.frameworks.base import CapacityError, UnsupportedModelError
from repro.lint import lint_plan
from repro.lint.access import access_findings, op_sector_class

GOLDEN = Path(__file__).parent.parent / "data" / "golden_plan_refactor.json"


def _cells():
    return sorted(json.loads(GOLDEN.read_text()).items())


def _lower(key):
    sysname, model, abbr = key.split("/")
    config = BenchConfig()
    ds = get_dataset(abbr, config)
    X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
    plan = SYSTEMS[sysname]().lower(model, ds, X, config.spec_for(ds))
    return plan, config.spec_for(ds)


@pytest.mark.parametrize("key,want", _cells(), ids=[k for k, _ in _cells()])
def test_golden_cell_lints_clean_of_errors(key, want):
    if want is None:
        with pytest.raises((UnsupportedModelError, CapacityError)):
            _lower(key)
        return
    plan, spec = _lower(key)
    report = lint_plan(plan, spec)
    assert not report.errors, report.render()

    sysname, model, _abbr = key.split("/")
    rules = {f.rule for f in report.findings}
    if sysname == "TLPGNN":
        # the paper's central claim: no atomics, nothing to flag at all
        assert report.ok and not report.findings, report.render()
    elif sysname == "GNNAdvisor":
        # per-group partials merge with atomicAdd (Figure 8)
        assert "DET001" in rules, report.render()
    elif sysname == "DGL" and model == "gat":
        # the COO-scatter spmm of the 18-kernel GAT pipeline
        assert "DET001" in rules, report.render()
        assert any(
            f.rule == "DET001" and f.op == "spmm_coo_atomic"
            for f in report.findings
        )
    elif sysname == "DGL" and model == "gcn":
        # cuSPARSE row-parallel spmm is deterministic
        assert "DET001" not in rules, report.render()


def test_every_golden_op_declares_effects():
    """No HAZ001 anywhere: all four lowering rules declare full tables."""
    for key, want in _cells():
        if want is None:
            continue
        plan, spec = _lower(key)
        assert all(op.effects is not None for op in plan.ops), key


def test_every_golden_op_declares_access():
    """No ACC001 anywhere: every op carries an access table covering every
    effects-named buffer (the acceptance bar for the access layer)."""
    for key, want in _cells():
        if want is None:
            continue
        plan, _spec = _lower(key)
        assert all(op.access is not None for op in plan.ops), key
        acc001 = [f for f in access_findings(plan) if f.rule == "ACC001"]
        assert not acc001, (key, [(f.op, f.buffer) for f in acc001])


def test_golden_cells_are_shape_and_liveness_clean():
    """The dataflow verifier proves every supported cell well-shaped and
    within HBM: zero SHAPE/LIVE findings of any severity."""
    for key, want in _cells():
        if want is None:
            continue
        plan, spec = _lower(key)
        report = lint_plan(plan, spec)
        dataflow = [f for f in report.findings
                    if f.rule.startswith(("SHAPE", "LIVE"))]
        assert not dataflow, (key, [f.render() for f in dataflow])


def test_golden_serving_schedules_are_race_free():
    """Two-stream serving of every supported cell is race-free, and the
    static verdict matches the seeded vector-clock replay exactly."""
    from repro.lint import cross_validate_races, lint_schedule, serving_schedule

    for key, want in _cells():
        if want is None:
            continue
        plan, _spec = _lower(key)
        sched = serving_schedule(plan, num_streams=2, batches=2)
        report = lint_schedule(sched)
        races = [f for f in report.findings if f.rule.startswith("RACE")]
        assert not races, (key, [f.render() for f in races])
        assert cross_validate_races(sched, seed=0) == [], key


def test_golden_footprints_render_symbolically():
    """Plans with declared shapes get a symbolic peak expression in the
    workload's (n, m, f) vocabulary."""
    from repro.lint import peak_footprint

    plan, _ = _lower("TLPGNN/gcn/CR")
    report = peak_footprint(plan)
    assert report.peak_bytes > 0
    assert "n*f" in report.expression


def test_golden_access_tells_the_figure7_story():
    """TLPGNN's conv launch is statically coalesced; DGL's GAT pipeline
    carries the gather and scatter flags the paper charts."""
    plan, _ = _lower("TLPGNN/gcn/CR")
    conv = [op for op in plan.ops if op.kind == "conv"]
    assert conv
    for op in conv:
        assert op_sector_class(op.access) in ("broadcast", "coalesced")
    plan, _ = _lower("DGL/gat/CR")
    flagged = {(f.rule, f.op) for f in access_findings(plan)}
    assert ("ACC004", "spmm_coo_atomic") in flagged, flagged
    assert any(rule == "ACC002" for rule, _op in flagged), flagged
