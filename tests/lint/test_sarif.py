"""SARIF 2.1.0 encoding: rule table completeness, result shape, CLI path."""

import json
from io import StringIO

from repro import cli
from repro.lint import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    sarif_log,
    sarif_rules,
)
from repro.lint.registry import RULES

_LEVEL_FOR = {"error": "error", "warning": "warning", "info": "note"}

_SAMPLE_ROWS = [
    {
        "plan": "TLPGNN/gcn on CR",
        "code": "DET001",
        "severity": "warning",
        "op": "spmm",
        "buffer": "out",
        "message": "float atomics make the reduction order nondeterministic",
    },
    {
        "plan": "GNNAdvisor/gat on CS",
        "code": "EQ003",
        "severity": "warning",
        "op": "",
        "buffer": "",
        "message": "plans agree only up to float-sum reassociation",
    },
]


class TestRuleTable:
    def test_every_registered_code_has_a_rule(self):
        table = {r["id"]: r for r in sarif_rules()}
        assert set(table) == set(RULES)
        for code, info in RULES.items():
            rule = table[code]
            assert rule["shortDescription"]["text"] == info.summary
            assert rule["helpUri"] == f"README.md#{info.anchor}"
            level = rule["defaultConfiguration"]["level"]
            assert level == _LEVEL_FOR[info.severity]

    def test_rule_order_matches_registry_order(self):
        assert [r["id"] for r in sarif_rules()] == list(RULES)


class TestLogShape:
    def test_envelope(self):
        log = sarif_log([])
        assert log["$schema"] == SARIF_SCHEMA
        assert log["version"] == SARIF_VERSION == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["results"] == []
        # empty logs still carry the full rule table for the upload
        assert len(run["tool"]["driver"]["rules"]) == len(RULES)

    def test_tool_name_override(self):
        log = sarif_log([], tool_name="repro-verify")
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-verify"

    def test_results_from_rows(self):
        (run,) = sarif_log(_SAMPLE_ROWS)["runs"]
        op_result, plan_result = run["results"]

        assert op_result["ruleId"] == "DET001"
        assert op_result["level"] == "warning"
        (loc,) = op_result["locations"][0]["logicalLocations"]
        assert loc["name"] == "spmm"
        assert loc["fullyQualifiedName"] == "TLPGNN/gcn on CR::spmm"
        assert loc["kind"] == "function"
        assert op_result["properties"] == {
            "plan": "TLPGNN/gcn on CR", "op": "spmm", "buffer": "out",
        }

        # a plan-level finding (no op) locates at the plan itself
        (loc,) = plan_result["locations"][0]["logicalLocations"]
        assert loc["name"] == "GNNAdvisor/gat on CS"
        assert loc["fullyQualifiedName"] == "GNNAdvisor/gat on CS"
        assert loc["kind"] == "module"

        rules = run["tool"]["driver"]["rules"]
        for result in (op_result, plan_result):
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_unknown_code_is_kept_without_rule_index(self):
        row = dict(_SAMPLE_ROWS[0], code="XX999", severity="bogus")
        (result,) = sarif_log([row])["runs"][0]["results"]
        assert result["ruleId"] == "XX999"
        assert result["level"] == "none"
        assert "ruleIndex" not in result

    def test_log_is_json_serializable(self):
        encoded = json.dumps(sarif_log(_SAMPLE_ROWS))
        assert json.loads(encoded)["version"] == "2.1.0"


class TestCLI:
    def test_lint_format_sarif(self):
        out = StringIO()
        rc = cli.main(
            ["--max-edges", "20000", "lint", "--system", "TLPGNN",
             "--model", "gcn", "--dataset", "CR", "--format", "sarif"],
            out=out,
        )
        assert rc in (0, 1)
        log = json.loads(out.getvalue())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_verify_format_sarif(self):
        out = StringIO()
        rc = cli.main(
            ["--max-edges", "20000", "verify", "--system", "TLPGNN",
             "--model", "gcn", "--dataset", "CR", "--format", "sarif"],
            out=out,
        )
        assert rc == 0
        log = json.loads(out.getvalue())
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-verify"
