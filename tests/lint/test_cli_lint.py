"""CLI coverage: ``repro lint`` (incl. --strict exit codes) and ``repro
plan --lint``."""

import io
from dataclasses import replace

import pytest

from repro import cli
from repro.frameworks.tlpgnn_engine import TLPGNNEngine
from repro.lint.effects import BufferEffect, KernelEffects, LaunchEnvelope

ARGS = ["--max-edges", "60000"]

_BAD = KernelEffects(
    buffers=(BufferEffect("out", "write", exclusive=False),),
    launch=LaunchEnvelope(threads_per_block=128),
)


class _BrokenSystem(TLPGNNEngine):
    name = "Broken"

    def _lower(self, *args, **kwargs):
        plan = super()._lower(*args, **kwargs)
        plan.ops = [replace(op, effects=_BAD) for op in plan.ops]
        return plan


def _run(argv):
    out = io.StringIO()
    rc = cli.main([*ARGS, *argv], out=out)
    return rc, out.getvalue()


def test_lint_clean_cell_exits_zero():
    rc, text = _run(["lint", "--system", "TLPGNN",
                     "--model", "gcn", "--dataset", "CR", "--strict"])
    assert rc == 0
    assert "TLPGNN/gcn on CR: clean" in text
    assert "0 error(s)" in text


def test_lint_default_grid_reports_baseline_warnings():
    rc, text = _run(["lint", "--dataset", "CR"])
    assert rc == 0  # warnings never fail the run, even under --strict
    assert "DET001" in text
    assert "spmm_coo_atomic" in text


def test_lint_strict_exits_one_on_misdeclared_kernel(monkeypatch):
    monkeypatch.setitem(cli.SYSTEMS, "Broken", _BrokenSystem)
    rc, text = _run(["lint", "--system", "Broken",
                     "--model", "gcn", "--dataset", "CR", "--strict"])
    assert rc == 1
    assert "HAZ002" in text


def test_lint_without_strict_reports_but_exits_zero(monkeypatch):
    monkeypatch.setitem(cli.SYSTEMS, "Broken", _BrokenSystem)
    rc, text = _run(["lint", "--system", "Broken",
                     "--model", "gcn", "--dataset", "CR"])
    assert rc == 0
    assert "HAZ002" in text


def test_lint_marks_unsupported_cells_as_dashes():
    rc, text = _run(["lint", "--system", "GNNAdvisor",
                     "--model", "gat", "--dataset", "CR", "--strict"])
    assert rc == 0
    assert "GNNAdvisor/gat on CR: - (UnsupportedModelError)" in text


def test_plan_lint_flag_appends_report():
    rc, text = _run(["plan", "CR", "gcn", "--system", "TLPGNN", "--lint"])
    assert rc == 0
    assert "lint: TLPGNN/gcn on CR: clean" in text
    # effect summaries ride along in describe() (GCN streams its norm
    # weights as edge_vals)
    assert "reads indptr,indices,feat,edge_vals -> writes out" in text


def test_plan_without_lint_flag_omits_report():
    rc, text = _run(["plan", "CR", "gcn", "--system", "TLPGNN"])
    assert rc == 0
    assert "lint:" not in text


@pytest.mark.parametrize("argv", [["lint", "--system", "Nope"]])
def test_lint_rejects_unknown_system(argv):
    with pytest.raises(SystemExit):
        _run(argv)
