"""CLI coverage: ``repro lint`` (incl. --strict exit codes, --json,
--baseline, --write-baseline, --explain) and ``repro plan --lint``."""

import io
import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro import cli
from repro.frameworks.tlpgnn_engine import TLPGNNEngine
from repro.lint.effects import BufferEffect, KernelEffects, LaunchEnvelope

REPO_BASELINE = Path(__file__).parent.parent.parent / "lint-baseline.json"

ARGS = ["--max-edges", "60000"]

_BAD = KernelEffects(
    buffers=(BufferEffect("out", "write", exclusive=False),),
    launch=LaunchEnvelope(threads_per_block=128),
)


class _BrokenSystem(TLPGNNEngine):
    name = "Broken"

    def _lower(self, *args, **kwargs):
        plan = super()._lower(*args, **kwargs)
        plan.ops = [replace(op, effects=_BAD) for op in plan.ops]
        return plan


def _run(argv):
    out = io.StringIO()
    rc = cli.main([*ARGS, *argv], out=out)
    return rc, out.getvalue()


def test_lint_clean_cell_exits_zero():
    rc, text = _run(["lint", "--system", "TLPGNN",
                     "--model", "gcn", "--dataset", "CR", "--strict"])
    assert rc == 0
    assert "TLPGNN/gcn on CR: clean" in text
    assert "0 error(s)" in text


def test_lint_default_grid_reports_baseline_warnings():
    rc, text = _run(["lint", "--dataset", "CR"])
    assert rc == 0  # warnings never fail the run, even under --strict
    assert "DET001" in text
    assert "spmm_coo_atomic" in text


def test_lint_strict_exits_one_on_misdeclared_kernel(monkeypatch):
    monkeypatch.setitem(cli.SYSTEMS, "Broken", _BrokenSystem)
    rc, text = _run(["lint", "--system", "Broken",
                     "--model", "gcn", "--dataset", "CR", "--strict"])
    assert rc == 1
    assert "HAZ002" in text


def test_lint_without_strict_reports_but_exits_zero(monkeypatch):
    monkeypatch.setitem(cli.SYSTEMS, "Broken", _BrokenSystem)
    rc, text = _run(["lint", "--system", "Broken",
                     "--model", "gcn", "--dataset", "CR"])
    assert rc == 0
    assert "HAZ002" in text


def test_lint_marks_unsupported_cells_as_dashes():
    rc, text = _run(["lint", "--system", "GNNAdvisor",
                     "--model", "gat", "--dataset", "CR", "--strict"])
    assert rc == 0
    assert "GNNAdvisor/gat on CR: - (UnsupportedModelError)" in text


def test_plan_lint_flag_appends_report():
    rc, text = _run(["plan", "CR", "gcn", "--system", "TLPGNN", "--lint"])
    assert rc == 0
    assert "lint: TLPGNN/gcn on CR: clean" in text
    # effect summaries ride along in describe() (GCN streams its norm
    # weights as edge_vals)
    assert "reads indptr,indices,feat,edge_vals -> writes out" in text


def test_plan_without_lint_flag_omits_report():
    rc, text = _run(["plan", "CR", "gcn", "--system", "TLPGNN"])
    assert rc == 0
    assert "lint:" not in text


@pytest.mark.parametrize("argv", [["lint", "--system", "Nope"]])
def test_lint_rejects_unknown_system(argv):
    with pytest.raises(SystemExit):
        _run(argv)


# ----------------------------------------------------------------------
# --json
# ----------------------------------------------------------------------
def test_lint_json_emits_stable_array():
    rc, text = _run(["lint", "--json", "--system", "DGL",
                     "--model", "gat", "--dataset", "CR"])
    assert rc == 0
    rows = json.loads(text)  # the output is the array, nothing else
    assert rows
    assert all(
        set(r) == {"plan", "code", "severity", "op", "buffer", "message"}
        for r in rows
    )
    assert any(
        r["code"] == "ACC004" and r["op"] == "spmm_coo_atomic" for r in rows
    )


def test_lint_json_clean_cell_is_empty_array():
    rc, text = _run(["lint", "--json", "--system", "TLPGNN",
                     "--model", "gcn", "--dataset", "CR"])
    assert rc == 0
    assert json.loads(text) == []


# ----------------------------------------------------------------------
# --baseline / --write-baseline
# ----------------------------------------------------------------------
def test_lint_baseline_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    rc, _ = _run(["lint", "--system", "DGL", "--model", "gat",
                  "--dataset", "CR", "--write-baseline", str(path)])
    assert rc == 0
    data = json.loads(path.read_text())
    assert data["version"] == 1 and data["findings"]
    assert set(data["findings"][0]) == {"plan", "code", "op", "buffer"}
    # a freshly written baseline suppresses every finding, even in strict
    rc, text = _run(["lint", "--system", "DGL", "--model", "gat",
                     "--dataset", "CR", "--strict", "--baseline", str(path)])
    assert rc == 0
    assert "suppressed by baseline" in text
    assert "0 error(s), 0 warning(s)" in text


def test_lint_strict_with_baseline_fails_on_unbaselined_findings(tmp_path):
    path = tmp_path / "empty.json"
    path.write_text('{"version": 1, "findings": []}\n')
    # relative to the empty baseline every warning is *new*: strict fails
    rc, text = _run(["lint", "--system", "DGL", "--model", "gat",
                     "--dataset", "CR", "--strict", "--baseline", str(path)])
    assert rc == 1
    assert "ACC004" in text


def test_lint_missing_baseline_file_is_a_usage_error(tmp_path):
    rc, _ = _run(["lint", "--baseline", str(tmp_path / "nope.json"),
                  "--system", "TLPGNN", "--model", "gcn", "--dataset", "CR"])
    assert rc == 2


def test_repo_baseline_covers_the_default_grid():
    """The committed lint-baseline.json suppresses the whole grid (the CI
    contract: strict + baseline over every cell yields an empty array)."""
    rc, text = _run(["lint", "--strict", "--json",
                     "--baseline", str(REPO_BASELINE)])
    assert rc == 0
    assert json.loads(text) == []


# ----------------------------------------------------------------------
# --explain
# ----------------------------------------------------------------------
def test_lint_explain_known_code():
    rc, text = _run(["lint", "--explain", "acc002"])  # case-insensitive
    assert rc == 0
    assert text.startswith("ACC002 [warning]")
    assert "README.md#access-patterns-accdivoob" in text


def test_lint_explain_unknown_code():
    rc, text = _run(["lint", "--explain", "XYZ999"])
    assert rc == 2
    assert "unknown finding code" in text


def test_lint_explain_typo_suggests_nearest_code():
    rc, text = _run(["lint", "--explain", "SHAPE01"])
    assert rc == 2
    assert "did you mean SHAPE001?" in text


def test_lint_explain_new_race_code():
    rc, text = _run(["lint", "--explain", "race001"])
    assert rc == 0
    assert text.startswith("RACE001 [error]")
    assert "README.md#cross-stream-races-race" in text


# ----------------------------------------------------------------------
# stale suppressions / --prune-baseline
# ----------------------------------------------------------------------
def _stale_entry():
    return {"plan": "TLPGNN/gcn on CR", "code": "DET001",
            "op": "ghost_kernel", "buffer": "tmp:ghost"}


def test_lint_reports_stale_suppressions(tmp_path):
    path = tmp_path / "baseline.json"
    rc, _ = _run(["lint", "--system", "DGL", "--model", "gat",
                  "--dataset", "CR", "--write-baseline", str(path)])
    assert rc == 0
    data = json.loads(path.read_text())
    data["findings"].append(_stale_entry())
    path.write_text(json.dumps(data))
    rc, text = _run(["lint", "--system", "DGL", "--model", "gat",
                     "--dataset", "CR", "--baseline", str(path)])
    assert rc == 0
    assert "1 stale suppression(s)" in text
    assert "--prune-baseline" in text


def test_lint_prune_baseline_drops_stale_entries(tmp_path):
    path = tmp_path / "baseline.json"
    rc, _ = _run(["lint", "--system", "DGL", "--model", "gat",
                  "--dataset", "CR", "--write-baseline", str(path)])
    assert rc == 0
    before = json.loads(path.read_text())
    data = {"version": 1,
            "findings": [*before["findings"], _stale_entry()]}
    path.write_text(json.dumps(data))
    rc, text = _run(["lint", "--system", "DGL", "--model", "gat",
                     "--dataset", "CR", "--baseline", str(path),
                     "--prune-baseline"])
    assert rc == 0
    assert "pruned 1 stale suppression(s)" in text
    after = json.loads(path.read_text())
    assert after == before  # back to exactly the live entries


def test_repo_baseline_has_no_stale_suppressions():
    rc, text = _run(["lint", "--baseline", str(REPO_BASELINE)])
    assert rc == 0
    assert "stale suppression" not in text


# ----------------------------------------------------------------------
# --streams race self-check and serve --lint preflight
# ----------------------------------------------------------------------
def test_lint_streams_zero_disables_race_check():
    rc, text = _run(["lint", "--streams", "0", "--system", "TLPGNN",
                     "--model", "gcn", "--dataset", "CR", "--strict"])
    assert rc == 0
    assert "TLPGNN/gcn on CR: clean" in text


def test_serve_lint_preflight_accepts_tlpgnn():
    rc, text = _run(["serve", "--dataset", "CR", "--model", "gcn",
                     "--lint", "--requests", "4"])
    assert rc == 0
    assert "serve preflight: ok" in text
