"""Property: lint verdicts are invariant under vertex reordering.

Every quantity the analyses consume — edge counts, degree-group counts,
launch envelopes, buffer names — is permutation-invariant, so relabeling
the graph must never change which (rule, severity, op) verdicts a system's
plan receives.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frameworks import SYSTEMS
from repro.gpusim.config import V100
from repro.graph.generators import power_law
from repro.lint import lint_plan

N = 20
GRAPH = power_law(N, 60, seed=11)
X = np.random.default_rng(1).standard_normal((N, 8)).astype(np.float32)

CELLS = [
    ("TLPGNN", "gcn"),
    ("TLPGNN", "gat"),
    ("DGL", "gcn"),
    ("DGL", "gat"),
    ("GNNAdvisor", "gcn"),
    ("FeatGraph", "gat"),
]


def _verdicts(system_name, model, graph, feats):
    plan = SYSTEMS[system_name]().lower(model, graph, feats, V100)
    report = lint_plan(plan, V100)
    return {(f.rule, f.severity, f.op) for f in report.findings}


@pytest.mark.parametrize("system_name,model", CELLS)
@settings(max_examples=15, deadline=None)
@given(perm=st.permutations(range(N)))
def test_lint_verdicts_survive_vertex_relabeling(system_name, model, perm):
    perm = np.asarray(perm, dtype=np.int64)
    base = _verdicts(system_name, model, GRAPH, X)
    Xp = np.empty_like(X)
    Xp[perm] = X  # feature row of old vertex v moves to new id perm[v]
    assert _verdicts(system_name, model, GRAPH.permute(perm), Xp) == base
