"""Property: lint verdicts are invariant under vertex reordering.

Every quantity the analyses consume — edge counts, degree-group counts,
launch envelopes, buffer names — is permutation-invariant, so relabeling
the graph must never change which (rule, severity, op) verdicts a system's
plan receives.  The same holds one layer down: a kernel's symbolic access
table (and therefore its coalescing, divergence, and bounds verdicts)
depends only on shapes and the CSR contract, never on vertex identity.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frameworks import SYSTEMS
from repro.gpusim.config import V100
from repro.graph.generators import power_law
from repro.kernels.edge_parallel_warp import EdgeParallelWarpKernel
from repro.kernels.pull_thread import PullThreadKernel
from repro.kernels.push import PushKernel
from repro.kernels.tlpgnn import TLPGNNKernel
from repro.lint import lint_plan
from repro.lint.access import KernelAccess, access_findings
from repro.models.convspec import ConvWorkload
from repro.plan import plan_for_kernel

N = 20
GRAPH = power_law(N, 60, seed=11)
X = np.random.default_rng(1).standard_normal((N, 8)).astype(np.float32)

CELLS = [
    ("TLPGNN", "gcn"),
    ("TLPGNN", "gat"),
    ("DGL", "gcn"),
    ("DGL", "gat"),
    ("GNNAdvisor", "gcn"),
    ("FeatGraph", "gat"),
]


def _verdicts(system_name, model, graph, feats):
    plan = SYSTEMS[system_name]().lower(model, graph, feats, V100)
    report = lint_plan(plan, V100)
    return {(f.rule, f.severity, f.op) for f in report.findings}


@pytest.mark.parametrize("system_name,model", CELLS)
@settings(max_examples=15, deadline=None)
@given(perm=st.permutations(range(N)))
def test_lint_verdicts_survive_vertex_relabeling(system_name, model, perm):
    perm = np.asarray(perm, dtype=np.int64)
    base = _verdicts(system_name, model, GRAPH, X)
    Xp = np.empty_like(X)
    Xp[perm] = X  # feature row of old vertex v moves to new id perm[v]
    assert _verdicts(system_name, model, GRAPH.permute(perm), Xp) == base


# ----------------------------------------------------------------------
# the access layer: coalescing / divergence / bounds verdicts
# ----------------------------------------------------------------------
class _OffByOneTLPGNN(TLPGNNKernel):
    """TLPGNN whose declared feature sweep overruns each row by one — the
    OOB001 probe, so the bounds axis of the property is non-vacuous."""

    def access_patterns(self, workload):
        acc = super().access_patterns(workload)
        patterns = tuple(
            replace(p, col=replace(p.col, const=p.col.const + 1))
            if p.buffer == "feat" else p
            for p in acc.patterns
        )
        return KernelAccess(
            patterns=patterns,
            shapes=acc.shapes,
            unit_rows=acc.unit_rows,
            value_ranges=acc.value_ranges,
        )


ACCESS_KERNELS = [
    TLPGNNKernel(),
    PullThreadKernel(),
    PushKernel(),
    EdgeParallelWarpKernel(),
    _OffByOneTLPGNN(),
]
ACCESS_IDS = ["tlpgnn", "pull_thread", "push", "edge_parallel_warp", "oob_probe"]


def _access_verdicts(kernel, graph, feats):
    workload = ConvWorkload(graph=graph, X=feats, reduce="sum")
    plan = plan_for_kernel(kernel, workload)
    return {(f.rule, f.severity, f.buffer) for f in access_findings(plan)}


def test_oob_probe_actually_flags_out_of_bounds():
    assert ("OOB001", "error", "feat") in _access_verdicts(
        _OffByOneTLPGNN(), GRAPH, X
    )


@pytest.mark.parametrize("kernel", ACCESS_KERNELS, ids=ACCESS_IDS)
@settings(max_examples=15, deadline=None)
@given(perm=st.permutations(range(N)))
def test_access_verdicts_survive_vertex_relabeling(kernel, perm):
    perm = np.asarray(perm, dtype=np.int64)
    base = _access_verdicts(kernel, GRAPH, X)
    Xp = np.empty_like(X)
    Xp[perm] = X
    assert _access_verdicts(kernel, GRAPH.permute(perm), Xp) == base
