"""Cross-stream race detection: the static happens-before detector, the
seeded vector-clock replay, and the agreement contract between the two."""

import pytest

from repro.lint import (
    KernelAccess,
    StreamSchedule,
    ScheduledPlan,
    VectorClockChecker,
    cross_validate_races,
    default_shared,
    lint_schedule,
    race_findings,
    replay_schedule,
    serving_schedule,
    static_race_keys,
)
from repro.lint.access import lane_stream
from repro.lint.effects import LaunchEnvelope, effect_table
from repro.plan import ComputeStep, ExecutionPlan, KernelOp

ENV = LaunchEnvelope(threads_per_block=128)


def _plan(ops):
    return ExecutionPlan(
        system="X", model="m", graph_name="g", pipeline_name="p",
        ops=ops,
        compute=ComputeStep(kind="reference", workload=None),
    )


def _op(name, effects):
    access = KernelAccess(
        patterns=tuple(
            lane_stream(b.buffer, role=b.mode, row="flat")
            for b in effects.buffers
        )
    )
    return KernelOp(
        name=name, kind="modeled", analyze_fn=lambda s: None,
        effects=effects, access=access,
    )


def _serving_plan():
    """A TLPGNN-shaped plan: read-only graph inputs, private output."""
    ops = [
        _op("aggregate", effect_table(
            reads=("feat", "indptr", "indices"), writes=("tmp:agg",),
            launch=ENV)),
        _op("update", effect_table(
            reads=("tmp:agg",), writes=("out",), launch=ENV)),
    ]
    return _plan(ops)


def _rules(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# schedule construction
# ----------------------------------------------------------------------
def test_default_shared_is_the_read_only_graph_inputs():
    assert default_shared(_serving_plan()) == frozenset(
        {"feat", "indptr", "indices"}
    )


def test_serving_schedule_least_loaded_assignment():
    sched = serving_schedule(_serving_plan(), num_streams=2, batches=4)
    assert sched.num_streams == 2
    assert [e.stream for e in sched.entries] == [0, 1, 0, 1]
    assert [e.label for e in sched.entries] == [
        "batch0", "batch1", "batch2", "batch3"
    ]
    # each batch shares only the read-only inputs
    for entry in sched.entries:
        assert entry.shared == frozenset({"feat", "indptr", "indices"})


def test_schedule_validates_stream_indices():
    plan = _serving_plan()
    with pytest.raises(ValueError):
        StreamSchedule(
            entries=(ScheduledPlan(plan, stream=3, label="b",
                                   shared=frozenset()),),
            num_streams=2,
        )


# ----------------------------------------------------------------------
# the static detector
# ----------------------------------------------------------------------
def test_tlpgnn_serving_schedule_is_race_free():
    sched = serving_schedule(_serving_plan(), num_streams=2, batches=2)
    report = lint_schedule(sched)
    assert report.findings == ()
    assert report.ok


def test_race001_cross_stream_shared_write():
    # both batches write the SAME shared "out" buffer — a seeded
    # misconfiguration of the serving path
    sched = serving_schedule(
        _serving_plan(), num_streams=2, batches=2,
        shared=frozenset({"feat", "indptr", "indices", "out"}),
    )
    findings = race_findings(sched)
    assert "RACE001" in _rules(findings)
    f = next(f for f in findings if f.rule == "RACE001")
    assert f.buffer == "out"
    assert f.severity == "error"


def test_race002_read_vs_cross_stream_write():
    reader = _plan([_op("probe", effect_table(
        reads=("stats",), writes=("out",), launch=ENV))])
    writer = _plan([_op("bump", effect_table(
        reads=(), writes=("stats", "out2"), launch=ENV))])
    shared = frozenset({"stats"})
    sched = StreamSchedule(
        entries=(
            ScheduledPlan(reader, stream=0, label="reader", shared=shared),
            ScheduledPlan(writer, stream=1, label="writer", shared=shared),
        ),
        num_streams=2,
    )
    findings = race_findings(sched)
    assert _rules(findings) == {"RACE002"}
    assert findings[0].buffer == "stats"


def test_race003_atomic_atomic_is_a_warning():
    def counter():
        return _plan([_op("count", effect_table(
            atomics=("hist",), writes=("out",), launch=ENV))])

    shared = frozenset({"hist"})
    sched = StreamSchedule(
        entries=(
            ScheduledPlan(counter(), stream=0, label="a", shared=shared),
            ScheduledPlan(counter(), stream=1, label="b", shared=shared),
        ),
        num_streams=2,
    )
    findings = race_findings(sched)
    assert _rules(findings) == {"RACE003"}
    assert findings[0].severity == "warning"


def test_same_stream_conflicts_are_ordered_not_racy():
    # two writers of a shared buffer on the SAME stream: FIFO order is a
    # happens-before edge, so no race
    writer = _plan([_op("w", effect_table(writes=("shared_buf", "out"),
                                          launch=ENV))])
    shared = frozenset({"shared_buf"})
    sched = StreamSchedule(
        entries=(
            ScheduledPlan(writer, stream=0, label="a", shared=shared),
            ScheduledPlan(writer, stream=0, label="b", shared=shared),
        ),
        num_streams=2,
    )
    assert race_findings(sched) == []


# ----------------------------------------------------------------------
# the dynamic vector-clock replay
# ----------------------------------------------------------------------
def test_replay_completes_every_scheduled_op():
    sched = serving_schedule(_serving_plan(), num_streams=2, batches=3)
    completions = replay_schedule(sched, seed=7)
    total_ops = sum(len(e.plan.ops) for e in sched.entries)
    assert len(completions) == total_ops
    assert {c.kernel.tag for c in completions} == {
        (ei, oi)
        for ei, e in enumerate(sched.entries)
        for oi in range(len(e.plan.ops))
    }


def test_vector_clock_checker_agrees_on_clean_schedule():
    sched = serving_schedule(_serving_plan(), num_streams=2, batches=2)
    checker = VectorClockChecker(sched)
    dynamic = checker.check(replay_schedule(sched, seed=0))
    assert dynamic == set()
    assert static_race_keys(sched) == set()


def test_vector_clock_checker_agrees_on_racy_schedule():
    sched = serving_schedule(
        _serving_plan(), num_streams=2, batches=2,
        shared=frozenset({"feat", "indptr", "indices", "out"}),
    )
    static = static_race_keys(sched)
    dynamic = VectorClockChecker(sched).check(replay_schedule(sched, seed=0))
    assert static == dynamic
    assert ("RACE001", "out") in static


@pytest.mark.parametrize("seed", [0, 1, 13, 99])
def test_cross_validation_is_empty_for_every_seed(seed):
    clean = serving_schedule(_serving_plan(), num_streams=2, batches=3)
    assert cross_validate_races(clean, seed=seed) == []

    racy = serving_schedule(
        _serving_plan(), num_streams=2, batches=2,
        shared=frozenset({"feat", "indptr", "indices", "out"}),
    )
    assert cross_validate_races(racy, seed=seed) == []


def test_lint_schedule_report_label_and_errors():
    sched = serving_schedule(
        _serving_plan(), num_streams=2, batches=2,
        shared=frozenset({"feat", "indptr", "indices", "out"}),
    )
    report = lint_schedule(sched)
    assert "2 stream(s)" in report.plan_label
    assert not report.ok
    assert all(f.rule.startswith("RACE") for f in report.findings)


def test_single_stream_schedule_never_races():
    # everything serialized on one stream: total order, no concurrency
    sched = serving_schedule(
        _serving_plan(), num_streams=1, batches=4,
        shared=frozenset({"feat", "indptr", "indices", "out"}),
    )
    assert race_findings(sched) == []
    assert cross_validate_races(sched, seed=3) == []
