"""Unit tests of the optimizer passes: legality from the effect tables."""

import pytest

from repro.bench.harness import BenchConfig, get_dataset, make_features
from repro.frameworks import SYSTEMS
from repro.kernels.fusion import streaming_kernel_stats
from repro.lint import access
from repro.lint.access import KernelAccess
from repro.lint.effects import LaunchEnvelope, effect_table
from repro.opt import (
    DeadIntermediateElimination,
    ElementwiseFusion,
    IllegalRewriteError,
    PassContext,
    PassPipeline,
    PlanPass,
)
from repro.plan.ir import KernelOp

ENVELOPE = LaunchEnvelope(threads_per_block=256)


def _ew_op(
    name,
    *,
    rb=(),
    wb="tmp:x",
    gather_via=None,
    gathered=(),
    scatter=False,
    atomics=False,
):
    """A synthetic streaming elementwise op with a declared effect table.

    ``gathered`` names read buffers fetched through an indirection (via
    ``gather_via``); ``scatter`` makes the write indirect; ``atomics``
    turns the write into an atomic merge.
    """
    pats = []
    for b in rb:
        if b in gathered:
            pats.append(access.gather(b, via=gather_via or "idx"))
        else:
            pats.append(access.lane_stream(b, row="flat"))
    if scatter:
        pats.append(access.scatter(wb, role="write", via=gather_via or "idx"))
    else:
        pats.append(access.lane_stream(wb, role="write", row="flat"))
    eff = (
        effect_table(reads=tuple(rb), atomics=(wb,), atomic_ops=4096,
                     launch=ENVELOPE)
        if atomics
        else effect_table(reads=tuple(rb), writes=(wb,), launch=ENVELOPE)
    )
    return KernelOp(
        name=name,
        kind="modeled",
        analyze_fn=lambda spec, _n=name: streaming_kernel_stats(
            _n, 4096, spec,
            read_bytes_per_item=8.0, write_bytes_per_item=4.0,
            instr_per_item=3.0,
        ),
        effects=eff,
        access=KernelAccess(patterns=tuple(pats)),
    )


@pytest.fixture(scope="module")
def dgl_cell():
    config = BenchConfig()
    ds = get_dataset("CR", config)
    X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
    spec = config.spec_for(ds)
    plan = SYSTEMS["DGL"]().lower("gcn", ds, X, spec)
    return plan, spec, ds


def _with_ops(plan, ops):
    from dataclasses import replace

    return replace(plan, ops=list(ops))


def _ctx(spec, dataset=None):
    return PassContext(spec=spec, dataset=dataset)


# ----------------------------------------------------------------------
# dead-intermediate elimination
# ----------------------------------------------------------------------
class TestDCE:
    def test_removes_dead_transient_chain(self, dgl_cell):
        plan, spec, _ = dgl_cell
        live = _ew_op("live", rb=("x",), wb="y")
        a = _ew_op("dead_a", rb=("x",), wb="tmp:d1")
        b = _ew_op("dead_b", rb=("tmp:d1",), wb="tmp:d2")
        # b's output is unread -> dead; removing b orphans a -> fixpoint
        out = DeadIntermediateElimination().apply(
            _with_ops(plan, [a, b, live]), _ctx(spec)
        )
        assert out is not None
        assert [op.name for op in out.ops] == ["live"]

    def test_keeps_read_transients_and_real_outputs(self, dgl_cell):
        plan, spec, _ = dgl_cell
        a = _ew_op("prod", rb=("x",), wb="tmp:t")
        b = _ew_op("cons", rb=("tmp:t",), wb="y")
        assert (
            DeadIntermediateElimination().apply(
                _with_ops(plan, [a, b]), _ctx(spec)
            )
            is None
        )

    def test_keeps_atomic_merges(self, dgl_cell):
        plan, spec, _ = dgl_cell
        a = _ew_op("merge", rb=("x",), wb="tmp:t", atomics=True)
        assert (
            DeadIntermediateElimination().apply(
                _with_ops(plan, [a]), _ctx(spec)
            )
            is None
        )

    def test_keeps_gather_index_buffers(self, dgl_cell):
        plan, spec, _ = dgl_cell
        # idx's only consumer is b's indirection (via), not a plain read
        a = _ew_op("mkidx", rb=("x",), wb="tmp:idx")
        b = _ew_op(
            "gath", rb=("feat",), wb="y",
            gathered=("feat",), gather_via="tmp:idx",
        )
        assert (
            DeadIntermediateElimination().apply(
                _with_ops(plan, [a, b]), _ctx(spec)
            )
            is None
        )

    def test_prunes_real_dgl_pipeline(self, dgl_cell):
        """The lowered DGL gcn pipeline carries launches whose transients
        nothing reads (csr bookkeeping); DCE must find at least one."""
        plan, spec, _ = dgl_cell
        out = DeadIntermediateElimination().apply(plan, _ctx(spec))
        if out is not None:
            assert len(out.ops) < len(plan.ops)


# ----------------------------------------------------------------------
# elementwise fusion
# ----------------------------------------------------------------------
class TestFusion:
    def test_fuses_adjacent_chain_to_one_launch(self, dgl_cell):
        plan, spec, _ = dgl_cell
        a = _ew_op("a", rb=("x",), wb="tmp:a")
        b = _ew_op("b", rb=("tmp:a",), wb="tmp:b")
        c = _ew_op("c", rb=("tmp:b",), wb="out")
        out = ElementwiseFusion().apply(_with_ops(plan, [a, b, c]), _ctx(spec))
        assert out is not None
        assert len(out.ops) == 1
        fused = out.ops[0]
        assert fused.name == "a+b+c"
        assert fused.fused
        # the transient vanished from the dataflow; work is conserved
        assert tuple(fused.effects.reads) == ("x",)
        assert tuple(fused.effects.writes) == ("out",)
        sa, _ = a.analyze(spec)
        sb, _ = b.analyze(spec)
        sc, _ = c.analyze(spec)
        sf, _ = fused.analyze(spec)
        assert sf.instructions == sa.instructions + sb.instructions + sc.instructions
        assert sf.load_sectors < sa.load_sectors + sb.load_sectors + sc.load_sectors

    def test_indirect_consumer_read_blocks_fusion(self, dgl_cell):
        plan, spec, _ = dgl_cell
        a = _ew_op("a", rb=("x",), wb="tmp:a")
        # consumer gathers tmp:a through an indirection: other units'
        # producer rows cannot stay in registers across the boundary
        b = _ew_op(
            "b", rb=("tmp:a",), wb="out",
            gathered=("tmp:a",), gather_via="idx",
        )
        assert ElementwiseFusion().apply(_with_ops(plan, [a, b]), _ctx(spec)) is None

    def test_transient_as_index_buffer_blocks_fusion(self, dgl_cell):
        plan, spec, _ = dgl_cell
        a = _ew_op("a", rb=("x",), wb="tmp:a")
        b = _ew_op(
            "b", rb=("tmp:a", "feat"), wb="out",
            gathered=("feat",), gather_via="tmp:a",
        )
        assert ElementwiseFusion().apply(_with_ops(plan, [a, b]), _ctx(spec)) is None

    def test_scattered_producer_write_blocks_fusion(self, dgl_cell):
        plan, spec, _ = dgl_cell
        a = _ew_op("a", rb=("x",), wb="tmp:a", scatter=True, gather_via="idx")
        b = _ew_op("b", rb=("tmp:a",), wb="out")
        assert ElementwiseFusion().apply(_with_ops(plan, [a, b]), _ctx(spec)) is None

    def test_third_party_reader_blocks_fusion(self, dgl_cell):
        plan, spec, _ = dgl_cell
        a = _ew_op("a", rb=("x",), wb="tmp:a")
        b = _ew_op("b", rb=("tmp:a",), wb="y")
        c = _ew_op("c", rb=("tmp:a",), wb="z")
        assert (
            ElementwiseFusion().apply(_with_ops(plan, [a, b, c]), _ctx(spec))
            is None
        )

    def test_atomics_block_fusion(self, dgl_cell):
        plan, spec, _ = dgl_cell
        a = _ew_op("a", rb=("x",), wb="tmp:a", atomics=True)
        b = _ew_op("b", rb=("tmp:a",), wb="out")
        assert ElementwiseFusion().apply(_with_ops(plan, [a, b]), _ctx(spec)) is None

    def test_fuses_real_dgl_pipeline(self, dgl_cell):
        """The DGL gcn 6-launch pipeline must lose launches to fusion."""
        plan, spec, _ = dgl_cell
        out = ElementwiseFusion().apply(plan, _ctx(spec))
        assert out is not None
        assert len(out.ops) < len(plan.ops)
        assert any(op.fused for op in out.ops)


# ----------------------------------------------------------------------
# pipeline gates
# ----------------------------------------------------------------------
class _StripEffects(PlanPass):
    """Deliberately broken: drops an op's effect table (HAZ001)."""

    name = "strip-effects"

    def apply(self, plan, ctx):
        from dataclasses import replace

        ops = list(plan.ops)
        for i, op in enumerate(ops):
            if op.kind == "modeled":
                ops[i] = KernelOp(
                    name=op.name, kind="modeled", analyze_fn=op.analyze_fn,
                    effects=None, access=None,
                )
                return replace(plan, ops=ops)
        return None


class _DuplicateOps(PlanPass):
    """Legal but never profitable: doubles every launch."""

    name = "duplicate-ops"

    def apply(self, plan, ctx):
        from dataclasses import replace

        return replace(plan, ops=list(plan.ops) + list(plan.ops))


class TestPipelineGates:
    def test_illegal_rewrite_raises(self, dgl_cell):
        plan, spec, ds = dgl_cell
        pipe = PassPipeline(passes=[_StripEffects()])
        with pytest.raises(IllegalRewriteError) as exc:
            pipe.run(plan, spec, dataset=ds)
        assert exc.value.pass_name == "strip-effects"
        assert any(f.rule == "HAZ001" for f in exc.value.findings)

    def test_unprofitable_rewrite_skipped_not_raised(self, dgl_cell):
        plan, spec, ds = dgl_cell
        pipe = PassPipeline(passes=[_DuplicateOps()])
        out, records = pipe.run(plan, spec, dataset=ds)
        assert out is plan  # rejected rewrite leaves the plan untouched
        assert len(records) == 1
        assert not records[0].applied
        assert records[0].detail == "unprofitable"
        assert records[0].after_ms > records[0].before_ms

    def test_profitable_rewrite_recorded(self, dgl_cell):
        plan, spec, ds = dgl_cell
        pipe = PassPipeline(passes=[ElementwiseFusion()])
        out, records = pipe.run(plan, spec, dataset=ds)
        assert records[0].applied
        assert records[0].after_ms <= records[0].before_ms
        assert len(out.ops) < len(plan.ops)
