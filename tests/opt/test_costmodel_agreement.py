"""Cost-model vs micro-simulator agreement on mapping decisions.

The tuner's profit metric is the analytical cost model; the micro-sim
replays exact per-warp transactions.  Over a small grid of (graph, model)
cells the two must pick the same winning kernel — except in cells listed
in the committed tolerance file (``tests/data/opt_tolerance.json``),
where the two models are *known* to weight latency-hiding differently.
gSuite-style: the test fails only on NEW divergence, and fails when the
tolerance file carries stale entries that now agree (so it can only
shrink)."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.gpusim.config import V100
from repro.graph import chain, erdos_renyi, power_law, star
from repro.kernels import (
    EdgeParallelWarpKernel,
    PullCTAKernel,
    PullThreadKernel,
    TLPGNNKernel,
)
from repro.models import build_conv
from repro.opt import microsim_cycles, rank_agreement
from repro.plan.ir import plan_for_kernel

TOLERANCE_FILE = Path(__file__).parent.parent / "data" / "opt_tolerance.json"

#: mid-scale grid: large enough that the roofline terms (not launch
#: overhead) decide the ranking, small enough to replay warp-by-warp fast
GRAPHS = {
    "er_mid": lambda: erdos_renyi(4000, 40000, seed=3, name="er_mid"),
    "pl_mid": lambda: power_law(
        4000, 32000, exponent=2.1, seed=5, name="pl_mid"
    ),
    "chain_big": lambda: chain(4096),
    "star_big": lambda: star(4097),
}
MODELS = ("gcn", "gin")


def _candidates(workload):
    cands = [
        TLPGNNKernel(assignment="hybrid"),
        PullCTAKernel(warps_per_block=4),
        PullThreadKernel(),
        EdgeParallelWarpKernel(),
    ]
    return [k for k in cands if k.supports(workload)]


def _cells():
    return [(g, m) for g in sorted(GRAPHS) for m in MODELS]


def _agreement(graph_name, model):
    graph = GRAPHS[graph_name]()
    rng = np.random.default_rng(7)
    X = rng.standard_normal((graph.num_vertices, 16), dtype=np.float32)
    workload = build_conv(model, graph, X, rng=rng)
    kernels = _candidates(workload)
    plan = plan_for_kernel(kernels[0], workload)
    return rank_agreement(plan, kernels, V100)


def _tolerated():
    return set(json.loads(TOLERANCE_FILE.read_text())["divergent_cells"])


@pytest.mark.parametrize(
    "graph_name,model", _cells(), ids=[f"{g}/{m}" for g, m in _cells()]
)
def test_cost_model_and_microsim_pick_same_winner(graph_name, model):
    cell = f"{graph_name}/{model}"
    result = _agreement(graph_name, model)
    if cell in _tolerated():
        # known divergence: must still diverge, else the entry is stale
        assert not result["agree"], (
            f"{cell} now agrees — remove it from {TOLERANCE_FILE.name}"
        )
    else:
        assert result["agree"], (
            f"NEW cost-model/micro-sim divergence on {cell}: "
            f"cost ranks {result['cost_rank']}, sim ranks "
            f"{result['sim_rank']} — investigate, or add the cell to "
            f"{TOLERANCE_FILE.name} with a justification"
        )


def test_rankings_cover_all_candidates():
    result = _agreement("er_mid", "gcn")
    assert sorted(result["cost_rank"]) == sorted(result["sim_rank"])
    assert len(result["cost_rank"]) >= 3


def test_microsim_cycles_positive_and_deterministic():
    graph = GRAPHS["er_mid"]()
    rng = np.random.default_rng(7)
    X = rng.standard_normal((graph.num_vertices, 16), dtype=np.float32)
    workload = build_conv("gcn", graph, X, rng=rng)
    kernel = TLPGNNKernel(assignment="hybrid")
    a = microsim_cycles(kernel, workload, V100)
    b = microsim_cycles(kernel, workload, V100)
    assert a > 0
    assert a == b


def test_tolerance_file_is_well_formed():
    doc = json.loads(TOLERANCE_FILE.read_text())
    cells = {f"{g}/{m}" for g, m in _cells()}
    assert set(doc) == {"description", "divergent_cells"}
    unknown = set(doc["divergent_cells"]) - cells
    assert not unknown, f"tolerance entries outside the grid: {unknown}"
