"""Golden byte-equivalence + re-lint cleanliness of the pass pipeline.

The optimizer's structural-safety claim: for every supported
(system, model) cell, running the plan after `optimize_plan` produces
output bytes identical to the unoptimized plan, and the rewritten plan
carries no ERROR-severity lint finding the input plan did not.
"""

import numpy as np
import pytest

from repro.bench.harness import BenchConfig, get_dataset, make_features
from repro.frameworks import SYSTEMS
from repro.lint import lint_plan
from repro.opt import OPT_LEVELS, error_keys, optimize_plan
from repro.plan import execute_plan

MODELS = ("gcn", "gin", "sage", "gat")


def _cells():
    out = []
    for sysname in sorted(SYSTEMS):
        system = SYSTEMS[sysname]()
        for model in MODELS:
            if system.supports(model):
                out.append((sysname, model))
    return out


@pytest.fixture(scope="module")
def cell_env():
    config = BenchConfig()
    ds = get_dataset("CR", config)
    X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
    return ds, X, config.spec_for(ds)


@pytest.mark.parametrize(
    "sysname,model", _cells(), ids=[f"{s}/{m}" for s, m in _cells()]
)
@pytest.mark.parametrize("level", ["safe", "search"])
def test_optimized_plan_is_byte_identical_and_lints_clean(
    cell_env, sysname, model, level
):
    ds, X, spec = cell_env
    plan = SYSTEMS[sysname]().lower(model, ds, X, spec)
    baseline_errors = error_keys(plan, spec)
    optimized, records = optimize_plan(plan, spec, level=level, dataset=ds)
    # no new ERROR-severity findings (the pipeline would have raised, but
    # assert the end state independently)
    new = {
        f.key()
        for f in lint_plan(optimized, spec).errors
    } - baseline_errors
    assert not new, new
    # byte-for-byte output equivalence
    assert np.array_equal(execute_plan(plan), execute_plan(optimized))
    # the records cover every pass that ran
    assert all(r.after_ms <= r.before_ms or not r.applied for r in records)


def test_off_level_is_identity(cell_env):
    ds, X, spec = cell_env
    plan = SYSTEMS["DGL"]().lower("gcn", ds, X, spec)
    optimized, records = optimize_plan(plan, spec, level="off", dataset=ds)
    assert optimized is plan
    assert records == []


def test_unknown_level_rejected(cell_env):
    ds, X, spec = cell_env
    plan = SYSTEMS["DGL"]().lower("gcn", ds, X, spec)
    with pytest.raises(ValueError):
        optimize_plan(plan, spec, level="aggressive", dataset=ds)
    assert "aggressive" not in OPT_LEVELS


def test_safe_level_shrinks_dgl_pipeline(cell_env):
    """The headline rewrite: DGL's 6-launch gcn pipeline loses launches."""
    ds, X, spec = cell_env
    plan = SYSTEMS["DGL"]().lower("gcn", ds, X, spec)
    optimized, _ = optimize_plan(plan, spec, level="safe", dataset=ds)
    assert len(optimized.ops) < len(plan.ops)


def test_run_api_levels_agree_bytewise(cell_env):
    """`GNNSystem.run(opt=...)` returns identical outputs at every level."""
    ds, X, spec = cell_env
    outputs = {}
    for level in (None, "off", "safe", "search"):
        system = SYSTEMS["TLPGNN"]()
        outputs[level] = system.run("gcn", ds, X, spec, opt=level).output
    base = outputs[None]
    for level, out in outputs.items():
        assert np.array_equal(base, out), level


def test_run_rejects_unknown_opt_level(cell_env):
    ds, X, spec = cell_env
    with pytest.raises(ValueError):
        SYSTEMS["TLPGNN"]().run("gcn", ds, X, spec, opt="fastest")
