"""Auto-tuner contracts: determinism, budget, tie-or-win, persistence,
fingerprint separation, and the metrics mirror."""

import numpy as np
import pytest

from repro.bench.harness import BenchConfig, get_dataset, make_features
from repro.frameworks import SYSTEMS
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.opt import (
    PAPER_FIXED_KNOBS,
    TUNER_VERSION,
    AutoTuner,
    TunedPlanStore,
    get_tuned_store,
    set_tuned_store,
    tuning_key,
)
from repro.plan.cache import plan_fingerprint


@pytest.fixture(scope="module")
def cell():
    config = BenchConfig()
    ds = get_dataset("CR", config)
    X = make_features(ds.graph.num_vertices, config.feat_dim, seed=config.seed)
    return ds, X, config.spec_for(ds)


@pytest.fixture
def fresh_store():
    """Install an empty process store; restore the old one afterwards."""
    store = TunedPlanStore()
    previous = set_tuned_store(store)
    yield store
    set_tuned_store(previous)


def _tune(cell, *, budget=12, seed=0, store=None):
    ds, X, spec = cell
    # note: an empty TunedPlanStore is falsy (len == 0), so `store or ...`
    # would silently discard it — compare against None explicitly
    tuner = AutoTuner(
        budget=budget,
        seed=seed,
        store=store if store is not None else TunedPlanStore(),
    )
    return tuner.tune(SYSTEMS["TLPGNN"](), "gcn", ds, X, spec)


class TestSearch:
    def test_tie_or_win_vs_paper_fixed_config(self, cell):
        result = _tune(cell)
        assert result.tuned_ms <= result.fixed_ms * (1 + 1e-12)
        assert result.speedup_vs_fixed >= 1.0 - 1e-12

    def test_iterations_within_budget(self, cell):
        for budget in (2, 5, 12):
            result = _tune(cell, budget=budget)
            assert 0 < result.iterations <= budget

    def test_deterministic_replay(self, cell):
        a = _tune(cell, budget=10, seed=3)
        b = _tune(cell, budget=10, seed=3)
        assert a.best_knobs == b.best_knobs
        assert a.tuned_ms == b.tuned_ms
        assert a.fixed_ms == b.fixed_ms
        assert [t.knobs for t in a.trials] == [t.knobs for t in b.trials]

    def test_anchors_always_measured(self, cell):
        result = _tune(cell, budget=2)
        assert result.trials[0].knobs == PAPER_FIXED_KNOBS
        assert result.fixed_ms == result.trials[0].modeled_ms

    def test_budget_floor_enforced(self):
        with pytest.raises(ValueError):
            AutoTuner(budget=1)


class TestStore:
    def test_record_and_lookup(self, cell):
        ds, X, spec = cell
        store = TunedPlanStore()
        result = _tune(cell, store=store)
        assert len(store) == 1
        assert result.key in store
        assert store.lookup(result.key) == result.best_knobs
        assert store.lookup("missing") is None
        assert store.snapshot() == {
            "entries": 1, "hits": 1, "misses": 1, "tuned": 1, "dropped": 0,
        }
        entry = store.entry(result.key)
        assert entry is not None and entry["knobs"] == result.best_knobs
        assert entry["certificate"]["verdict"] in (
            "equal", "equivalent-unordered"
        )

    def test_save_load_roundtrip(self, cell, tmp_path):
        store = TunedPlanStore()
        result = _tune(cell, store=store)
        path = tmp_path / "tuned.json"
        store.save(path)
        loaded = TunedPlanStore.load(path)
        assert len(loaded) == 1
        assert loaded.lookup(result.key) == result.best_knobs

    def test_version_mismatch_dropped_on_load(self, cell, tmp_path):
        store = TunedPlanStore()
        result = _tune(cell, store=store)
        store._entries[result.key]["version"] = TUNER_VERSION + 1
        path = tmp_path / "tuned.json"
        store.save(path)
        loaded = TunedPlanStore.load(path)
        assert len(loaded) == 0
        # the silent drop is silent no more: counted and exposed
        assert loaded.dropped == 1
        assert loaded.snapshot()["dropped"] == 1

    def test_metrics_mirror(self, cell):
        ds, X, spec = cell
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            store = TunedPlanStore()
            result = _tune(cell, store=store)
            store.lookup(result.key, system="TLPGNN", model="gcn")
            store.lookup("missing")
            store.publish(registry)
            snap = {
                (m["name"], tuple(sorted(m.get("labels", {}).items()))): m
                for m in registry.snapshot()
            }
            assert snap[("plans_tuned", ())]["value"] == 1
            assert snap[("tuned_plan_entries", ())]["value"] == 1
            hit = [
                m for m in registry.snapshot()
                if m["name"] == "tuned_plan_hit" and m.get("labels")
            ]
            assert hit and hit[0]["value"] == 1
        finally:
            set_registry(previous)


class TestFingerprintSeparation:
    """Satellite: an untuned cached plan is never served as tuned."""

    def _key(self, cell, opt):
        ds, X, spec = cell
        return plan_fingerprint(
            system="TLPGNN", model="gcn", graph=ds.graph, X=X, spec=spec,
            knobs={}, dataset=ds, opt=opt,
        )

    def test_opt_context_changes_fingerprint(self, cell):
        base = self._key(cell, None)
        safe = self._key(
            cell, {"level": "safe", "tuner_version": TUNER_VERSION,
                   "tuned": None},
        )
        tuned = self._key(
            cell, {"level": "search", "tuner_version": TUNER_VERSION,
                   "tuned": dict(PAPER_FIXED_KNOBS)},
        )
        untuned = self._key(
            cell, {"level": "search", "tuner_version": TUNER_VERSION,
                   "tuned": None},
        )
        assert len({base, safe, tuned, untuned}) == 4

    def test_tuner_version_changes_fingerprint(self, cell):
        a = self._key(
            cell, {"level": "search", "tuner_version": TUNER_VERSION,
                   "tuned": None},
        )
        b = self._key(
            cell, {"level": "search", "tuner_version": TUNER_VERSION + 1,
                   "tuned": None},
        )
        assert a != b

    def test_legacy_fingerprint_stable_without_opt(self, cell):
        """opt=None must hash exactly like the pre-optimizer payload."""
        ds, X, spec = cell
        legacy = plan_fingerprint(
            system="TLPGNN", model="gcn", graph=ds.graph, X=X, spec=spec,
            knobs={}, dataset=ds,
        )
        assert legacy == self._key(cell, None)


class TestRunIntegration:
    def test_search_run_hits_tuned_store(self, cell, fresh_store):
        ds, X, spec = cell
        tuner = AutoTuner(budget=8, seed=0)  # records into process store
        result = tuner.tune(SYSTEMS["TLPGNN"](), "gcn", ds, X, spec)
        before = get_tuned_store().snapshot()
        out = SYSTEMS["TLPGNN"]().run("gcn", ds, X, spec, opt="search")
        after = get_tuned_store().snapshot()
        assert after["hits"] == before["hits"] + 1
        # the tuned path still computes the exact reference bytes
        base = SYSTEMS["TLPGNN"]().run("gcn", ds, X, spec).output
        assert np.array_equal(out.output, base)
        assert result.key in get_tuned_store()

    def test_tuning_key_ignores_feature_values(self, cell):
        ds, X, spec = cell
        a = tuning_key(
            system="TLPGNN", model="gcn", graph=ds.graph, X=X, spec=spec,
            dataset=ds,
        )
        b = tuning_key(
            system="TLPGNN", model="gcn", graph=ds.graph,
            X=np.zeros_like(X), spec=spec, dataset=ds,
        )
        c = tuning_key(
            system="TLPGNN", model="gcn", graph=ds.graph,
            X=X[:, : X.shape[1] // 2], spec=spec, dataset=ds,
        )
        assert a == b  # values don't matter
        assert a != c  # geometry does
