"""One-time equivalence gate: derived tables == hand-declared tables.

``tests/data/table_equivalence.json`` was captured from the tree *before*
the kernels switched to spec-derived effect/access tables (see
``tools/pin_kernel_tables.py`` for provenance): 4 builtin models x 10
kernel configurations, each pinning the full hand-written
``effects()`` / ``access_patterns()`` output, plus both parameterizations
of the unfused softmax staging.  Every kernel now *derives* its tables
from its :class:`~repro.mp.derive.KernelMapping` and the workload's UDF
terms — this suite proves the derivation reproduces the declarations
byte for byte.
"""

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.harness import BenchConfig, get_dataset, make_features
from repro.kernels.edge_centric import EdgeCentricKernel
from repro.kernels.edge_parallel_warp import EdgeParallelWarpKernel
from repro.kernels.fusion import three_kernel_gat_access
from repro.kernels.neighbor_group import NeighborGroupKernel
from repro.kernels.pull_cta import PullCTAKernel
from repro.kernels.pull_thread import PullThreadKernel
from repro.kernels.push import PushKernel
from repro.kernels.tlpgnn import TLPGNNKernel
from repro.models import build_conv
from repro.mp import softmax_stage_access

FIXTURE = Path(__file__).parent.parent / "data" / "table_equivalence.json"

KERNELS = {
    "tlpgnn_default": lambda: TLPGNNKernel(),
    "tlpgnn_software_nrc": lambda: TLPGNNKernel(
        assignment="software", register_cache=False
    ),
    "tlpgnn_g16": lambda: TLPGNNKernel(group_size=16, assignment="static"),
    "pull_thread": lambda: PullThreadKernel(),
    "pull_cta": lambda: PullCTAKernel(),
    "pull_cta_w8": lambda: PullCTAKernel(warps_per_block=8),
    "push": lambda: PushKernel(),
    "edge_centric": lambda: EdgeCentricKernel(),
    "neighbor_group_gs3": lambda: NeighborGroupKernel(group_size=3),
    "edge_parallel_warp": lambda: EdgeParallelWarpKernel(),
}


def _jsonable(obj):
    if dataclasses.is_dataclass(obj):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    return obj


def _round_trip(obj):
    return json.loads(json.dumps(_jsonable(obj)))


@pytest.fixture(scope="module")
def fixture():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def cell(fixture):
    config = BenchConfig(max_edges=fixture["max_edges"])
    graph = get_dataset(fixture["dataset"], config).graph
    X = make_features(graph.num_vertices, fixture["feat_dim"], seed=0)
    return graph, X


def _pairs(fixture_path=FIXTURE):
    fix = json.loads(fixture_path.read_text())
    return [
        (model, kname)
        for model, per_kernel in sorted(fix["cells"].items())
        for kname in sorted(per_kernel)
    ]


@pytest.mark.parametrize(
    "model,kname", _pairs(), ids=[f"{m}-{k}" for m, k in _pairs()]
)
def test_derived_tables_match_declared(model, kname, fixture, cell):
    graph, X = cell
    workload = build_conv(model, graph, X, rng=np.random.default_rng(0))
    kernel = KERNELS[kname]()
    assert kernel.supports(workload)
    want = fixture["cells"][model][kname]
    assert _round_trip(kernel.effects(workload)) == want["effects"], (
        f"{model}/{kname}: derived effect table drifted from the "
        "hand-declared pin"
    )
    assert _round_trip(kernel.access_patterns(workload)) == want["access"], (
        f"{model}/{kname}: derived access table drifted from the "
        "hand-declared pin"
    )


@pytest.mark.parametrize(
    "fkey,kwargs",
    [
        ("softmax_stages", {}),
        ("softmax_stages_alpha_edge_vals", {"alpha": "edge_vals"}),
    ],
)
def test_softmax_staging_matches_declared(fkey, kwargs, fixture, cell):
    graph, X = cell
    workload = build_conv("gat", graph, X, rng=np.random.default_rng(0))
    got = {
        key: _round_trip(acc)
        for key, acc in softmax_stage_access(workload, **kwargs).items()
    }
    assert got == fixture[fkey]


def test_fusion_wrapper_delegates_to_derivation(cell):
    graph, X = cell
    workload = build_conv("gat", graph, X, rng=np.random.default_rng(0))
    assert _round_trip(three_kernel_gat_access(workload)) == _round_trip(
        softmax_stage_access(workload)
    )
