"""Property tests: derived tables stay honest for *any* legal UDF.

The pinned equivalence suite proves the derivation reproduces the old
hand-written tables for the builtin zoo; these tests close the other
half of the contract — for randomly drawn legal ``(MessageSpec,
ReduceSpec)`` terms on random small graphs, the derived effect and
access tables must still agree with the measured models
(``cross_validate_effects`` / ``cross_validate_access`` triangulate
declaration vs vectorized counters vs the exact micro-simulator), and
lowering must be a pure function of the spec structure.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frameworks.dglsim import DGLSystem
from repro.frameworks.featgraph import FeatGraphSystem
from repro.frameworks.gnnadvisor import GNNAdvisorSystem
from repro.frameworks.tlpgnn_engine import TLPGNNEngine
from repro.graph.csr import from_edge_list
from repro.kernels.edge_centric import EdgeCentricKernel
from repro.kernels.neighbor_group import NeighborGroupKernel
from repro.kernels.pull_thread import PullThreadKernel
from repro.kernels.push import PushKernel
from repro.kernels.tlpgnn import TLPGNNKernel
from repro.lint.access import cross_validate_access
from repro.lint.effects import cross_validate_effects
from repro.mp import (
    AttentionLogit,
    EdgeScalar,
    MessageSpec,
    ReduceSpec,
    SelfTerm,
    SymNorm,
    bind,
    register,
    unregister,
)

KERNELS = (
    TLPGNNKernel(),
    PullThreadKernel(),
    PushKernel(),
    EdgeCentricKernel(),
    NeighborGroupKernel(group_size=3),
)

SYSTEMS = (
    TLPGNNEngine(),
    DGLSystem(),
    FeatGraphSystem(),
    GNNAdvisorSystem(),
)


@st.composite
def cells(draw):
    """A random small graph + feature matrix (micro-sim sized)."""
    n = draw(st.integers(min_value=4, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            min_size=1,
            max_size=3 * n,
        )
    )
    src, dst = zip(*edges)
    graph = from_edge_list(src, dst, n, name="prop")
    feat = draw(st.sampled_from((4, 8, 32)))
    seed = draw(st.integers(0, 2**16))
    X = (
        np.random.default_rng(seed)
        .standard_normal((n, feat))
        .astype(np.float32)
    )
    return graph, X


@st.composite
def legal_specs(draw, graph):
    """Any (message, reduce) pair the closed-world validation admits."""
    feature = draw(st.sampled_from(("src", "dst")))
    if feature == "dst":
        scale = draw(
            st.sampled_from((None, "sym_norm", "edge_scalar"))
        )
        op = draw(st.sampled_from(("sum", "mean")))
        normalize, self_term = None, None
    else:
        scale = draw(
            st.sampled_from(
                (None, "sym_norm", "edge_scalar", "attention")
            )
        )
        if scale == "attention":
            op, normalize = "sum", "softmax"
        else:
            op = draw(st.sampled_from(("sum", "mean", "max")))
            normalize = None
        self_term = draw(
            st.one_of(
                st.none(),
                st.builds(
                    SelfTerm,
                    kind=st.sampled_from(("scaled", "eps", "concat")),
                    eps=st.floats(0.0, 1.0),
                ),
            )
        )
    if scale == "sym_norm":
        scale = SymNorm()
    elif scale == "edge_scalar":
        w_seed = draw(st.integers(0, 2**16))
        scale = EdgeScalar(
            values=np.random.default_rng(w_seed)
            .uniform(0.1, 2.0, graph.num_edges)
            .astype(np.float32)
        )
    elif scale == "attention":
        scale = AttentionLogit(
            negative_slope=draw(st.sampled_from((0.01, 0.2)))
        )
    return (
        MessageSpec(feature=feature, scale=scale),
        ReduceSpec(op=op, normalize=normalize, self_term=self_term),
    )


@st.composite
def bound_models(draw):
    graph, X = draw(cells())
    message, reduce_ = draw(legal_specs(graph))
    return bind(
        "prop", message, reduce_, graph, X, rng=np.random.default_rng(0)
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(model=bound_models())
def test_derived_effect_tables_are_honest(model):
    """Derived atomic/read/write declarations match the measured models
    for every kernel that supports the random workload."""
    workload = model.workload()
    checked = 0
    for kernel in KERNELS:
        if not kernel.supports(workload):
            continue
        assert cross_validate_effects(kernel, workload) == [], (
            f"{kernel.name}: {model.signature()}"
        )
        checked += 1
    assert checked > 0  # TLPGNN's fused kernel supports every legal spec


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(model=bound_models())
def test_derived_access_tables_are_honest(model):
    """Derived static sector classes agree with both measured memory
    models (counter model + exact micro-sim) on random legal specs."""
    workload = model.workload()
    for kernel in KERNELS:
        if not kernel.supports(workload):
            continue
        assert cross_validate_access(kernel, workload) == [], (
            f"{kernel.name}: {model.signature()}"
        )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_lowering_is_deterministic(data):
    """Same registered spec + same cell + same rng seed => every framework
    emits the identical op-name sequence, twice in a row."""
    graph, X = data.draw(cells())
    message, reduce_ = data.draw(legal_specs(graph))

    register("proptest", lambda: (message, reduce_), replace=True)
    try:
        for system in SYSTEMS:
            if not system.supports("proptest"):
                continue
            names = [
                tuple(op.name for op in system.lower(
                    "proptest", graph, X, rng=np.random.default_rng(3)
                ).ops)
                for _ in range(2)
            ]
            assert names[0] == names[1], system.name
    finally:
        unregister("proptest")


def test_hypothesis_is_available():
    # the property suite is part of tier-1: fail loudly if the plugin
    # ever disappears from the image instead of silently collecting 0
    assert settings().max_examples > 0


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
