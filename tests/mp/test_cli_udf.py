"""CLI coverage: ``repro udf`` — derived lowering/effects/access views."""

import io
import json

from repro import cli
from repro.mp import EdgeScalar, MessageSpec, ReduceSpec, register, unregister

ARGS = ["--max-edges", "60000"]


def _run(argv):
    out = io.StringIO()
    rc = cli.main([*ARGS, *argv], out=out)
    return rc, out.getvalue()


def test_udf_lists_registered_models():
    rc, text = _run(["udf"])
    assert rc == 0
    for name in ("gcn", "gin", "sage", "gat", "rgcn"):
        assert f"{name}: recv[" in text


def test_udf_describes_builtin_gat():
    rc, text = _run(["udf", "gat", "--dataset", "CR"])
    assert rc == 0
    assert "softmax=yes" in text
    assert "18 kernel(s)" in text  # derived DGL pipeline
    assert "unfused softmax staging" in text
    assert "derived effects" in text
    assert "derived access" in text


def test_udf_json_is_machine_readable():
    rc, text = _run(["udf", "gcn", "--json"])
    assert rc == 0
    info = json.loads(text)
    assert info["terms"] == {
        "feature": "src",
        "scale": "sym_norm",
        "op": "sum",
        "softmax": False,
        "self": "scaled",
    }
    assert all(info["systems"][s]["supported"] for s in info["systems"])
    assert info["systems"]["DGL"]["kernels"][-1] == "add_self"
    assert "out" in info["effects"]["writes"]
    assert {row["buffer"] for row in info["access"]} >= {
        "indptr", "indices", "feat", "out"
    }


def test_udf_describes_user_registered_model():
    register(
        "clitest",
        lambda: (MessageSpec(scale=EdgeScalar()), ReduceSpec(op="max")),
        replace=True,
    )
    try:
        rc, text = _run(["udf", "clitest", "--json"])
        assert rc == 0
        info = json.loads(text)
        assert info["terms"]["op"] == "max"
        # max reduce: DGL/GNNAdvisor decline from the terms alone
        assert not info["systems"]["DGL"]["supported"]
        assert not info["systems"]["GNNAdvisor"]["supported"]
        assert info["systems"]["TLPGNN"]["supported"]
    finally:
        unregister("clitest")


def test_udf_unknown_model_exits_two():
    rc, text = _run(["udf", "nosuchmodel"])
    assert rc == 2
    assert "unknown model" in text
