"""Unit tests for the message-passing UDF algebra and registry.

Covers the closed-world validation rules, the numeric semantics of the
dst-send fold, registry extension/protection, and signature determinism.
Byte-identity of the builtin specs against the old hand-written builders
is pinned separately by the golden plan regression suite.
"""

import numpy as np
import pytest

from repro.graph.csr import from_edge_list
from repro.models.convspec import reference_aggregate
from repro.mp.spec import validate
from repro.mp import (
    AttentionLogit,
    EdgeScalar,
    MessageSpec,
    ReduceSpec,
    SelfTerm,
    SymNorm,
    bind,
    build_model,
    is_registered,
    register,
    registered_models,
    resolve,
    unregister,
)


@pytest.fixture()
def cell():
    # 5 vertices, one isolated (vertex 4) to exercise the zero-degree paths
    src = [0, 1, 2, 3, 0, 2, 1]
    dst = [1, 0, 0, 1, 2, 3, 3]
    graph = from_edge_list(src, dst, 5, name="toy")
    rng = np.random.default_rng(7)
    X = rng.standard_normal((5, 6)).astype(np.float32)
    return graph, X


# ----------------------------------------------------------------------
# closed-world validation
# ----------------------------------------------------------------------
def test_attention_requires_softmax():
    with pytest.raises(ValueError, match="normalize='softmax'"):
        validate(MessageSpec(scale=AttentionLogit()), ReduceSpec(op="sum"))


def test_softmax_requires_attention():
    with pytest.raises(ValueError, match="AttentionLogit"):
        validate(
            MessageSpec(scale=SymNorm()),
            ReduceSpec(op="sum", normalize="softmax"),
        )


@pytest.mark.parametrize(
    "reduce_",
    [
        ReduceSpec(op="max"),
        ReduceSpec(op="sum", self_term=SelfTerm(kind="eps")),
    ],
    ids=["max", "self-term"],
)
def test_dst_send_composition_rules(reduce_):
    with pytest.raises(ValueError, match="feature='dst'"):
        validate(MessageSpec(feature="dst"), reduce_)


def test_term_constructor_validation():
    with pytest.raises(ValueError, match="feature"):
        MessageSpec(feature="edge")
    with pytest.raises(ValueError, match="scale"):
        MessageSpec(scale=object())
    with pytest.raises(ValueError, match="op"):
        ReduceSpec(op="min")
    with pytest.raises(ValueError, match="normalize"):
        ReduceSpec(normalize="l2")
    with pytest.raises(ValueError, match="sum reduce"):
        ReduceSpec(op="mean", normalize="softmax")
    with pytest.raises(ValueError, match="kind"):
        SelfTerm(kind="gate")


# ----------------------------------------------------------------------
# compile semantics
# ----------------------------------------------------------------------
def test_dst_fold_matches_direct_semantics(cell):
    # recv[sum] of send[w * feat[dst]]: each in-edge of u contributes
    # w[e] * X[u], so out[u] = (sum of w over in-edges of u) * X[u]
    graph, X = cell
    rng = np.random.default_rng(3)
    w = rng.uniform(0.5, 2.0, graph.num_edges).astype(np.float32)
    model = bind(
        "dstsum",
        MessageSpec(feature="dst", scale=EdgeScalar(values=w)),
        ReduceSpec(op="sum"),
        graph,
        X,
    )
    got = reference_aggregate(model.workload())
    seg_w = np.add.reduceat(
        np.append(w.astype(np.float64), 0.0), graph.indptr[:-1]
    )
    seg_w = np.where(graph.in_degrees > 0, seg_w, 0.0)
    want = (seg_w[:, None] * X.astype(np.float64)).astype(np.float32)
    np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-6)
    # isolated vertex contributes nothing
    assert np.all(got[graph.in_degrees == 0] == 0.0)


def test_dst_fold_mean_divides_by_degree(cell):
    graph, X = cell
    model = bind(
        "dstmean",
        MessageSpec(feature="dst"),
        ReduceSpec(op="mean"),
        graph,
        X,
    )
    got = reference_aggregate(model.workload())
    # unweighted mean of d copies of X[u] is exactly X[u] wherever d > 0
    live = graph.in_degrees > 0
    np.testing.assert_allclose(got[live], X[live], rtol=1e-6, atol=1e-6)
    assert np.all(got[~live] == 0.0)


def test_edge_scalar_defaults_to_ones(cell):
    graph, X = cell
    weighted = bind(
        "ew", MessageSpec(scale=EdgeScalar()), ReduceSpec(), graph, X
    )
    plain = bind("plain", MessageSpec(), ReduceSpec(), graph, X)
    np.testing.assert_array_equal(
        weighted.workload().resolved_edge_weights(),
        np.ones(graph.num_edges, dtype=np.float32),
    )
    np.testing.assert_allclose(
        reference_aggregate(weighted.workload()),
        reference_aggregate(plain.workload()),
    )


def test_bind_is_deterministic_for_drawn_attention(cell):
    graph, X = cell
    spec = lambda: (  # noqa: E731
        MessageSpec(scale=AttentionLogit()),
        ReduceSpec(op="sum", normalize="softmax"),
    )
    a = bind("g1", *spec(), graph, X, rng=np.random.default_rng(11))
    b = bind("g2", *spec(), graph, X, rng=np.random.default_rng(11))
    np.testing.assert_array_equal(
        a.workload().attention.att_src, b.workload().attention.att_src
    )
    np.testing.assert_array_equal(
        a.workload().resolved_edge_weights(),
        b.workload().resolved_edge_weights(),
    )


def test_signature_is_structural_and_deterministic(cell):
    graph, X = cell
    m = build_model("gcn", graph, X)
    assert m.signature() == (
        "gcn: recv[sum + self[1/(d+1) * x]] of send[sym_norm * feat[src]]"
    )
    assert m.signature() == build_model("gcn", graph, X).signature()
    assert build_model("gat", graph, X).has_softmax


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_round_trip(cell):
    graph, X = cell

    def _builder():
        return MessageSpec(scale=EdgeScalar()), ReduceSpec(op="max")

    register("MaxPoolTest", _builder)
    try:
        assert is_registered("maxpooltest")
        assert "maxpooltest" in registered_models()
        model = build_model("maxpooltest", graph, X)
        assert model.reduce.op == "max"
        with pytest.raises(ValueError, match="already registered"):
            register("maxpooltest", _builder)
        register("maxpooltest", _builder, replace=True)
    finally:
        unregister("maxpooltest")
    assert not is_registered("maxpooltest")
    with pytest.raises(KeyError):
        resolve("maxpooltest")


def test_builtins_are_protected():
    with pytest.raises(ValueError, match="builtin"):
        unregister("gcn")
    for name in ("gcn", "gin", "sage", "graphsage", "gat", "rgcn"):
        assert is_registered(name)
