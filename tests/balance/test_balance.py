"""Hybrid workload balancing: Algorithm 1 semantics and the heuristic."""

import numpy as np
import pytest

from repro.balance import (
    DEGREE_THRESHOLD,
    VERTEX_THRESHOLD,
    choose_assignment,
    hardware_assignment,
    hybrid_assignment,
    simulate_task_pool,
    software_assignment,
    tune_warps_per_block,
)
from repro.gpusim import V100


class TestAlgorithm1:
    """Literal execution of the paper's Algorithm 1."""

    def test_every_vertex_processed_once(self):
        rng = np.random.default_rng(0)
        costs = rng.uniform(1, 10, size=1000)
        trace = simulate_task_pool(costs, num_warps=32, step=8)
        assert np.all(trace.owner >= 0)
        assert np.all(trace.owner < 32)

    def test_chunks_are_consecutive(self):
        costs = np.ones(100)
        trace = simulate_task_pool(costs, num_warps=4, step=10)
        # each chunk of 10 consecutive vertices has a single owner
        for c in range(0, 100, 10):
            assert len(set(trace.owner[c : c + 10].tolist())) == 1

    def test_total_work_conserved(self):
        rng = np.random.default_rng(1)
        costs = rng.uniform(1, 5, size=777)
        trace = simulate_task_pool(costs, num_warps=16, step=8)
        assert trace.finish_cycles.sum() == pytest.approx(costs.sum())

    def test_pulls_counted(self):
        costs = np.ones(64)
        trace = simulate_task_pool(costs, num_warps=4, step=8)
        assert trace.chunks_pulled.sum() == 8

    def test_fetch_cost_charged_per_pull(self):
        costs = np.ones(64)
        a = simulate_task_pool(costs, num_warps=4, step=8)
        b = simulate_task_pool(costs, num_warps=4, step=8, fetch_cost=100.0)
        assert b.finish_cycles.sum() == pytest.approx(
            a.finish_cycles.sum() + 100.0 * 8
        )

    def test_dynamic_beats_static_split_on_skew(self):
        rng = np.random.default_rng(2)
        costs = rng.pareto(1.3, size=4096) * 100 + 1
        trace = simulate_task_pool(costs, num_warps=64, step=4)
        static = costs.reshape(64, -1).sum(axis=1).max()
        assert trace.makespan <= static

    def test_validations(self):
        with pytest.raises(ValueError):
            simulate_task_pool(np.ones(4), num_warps=0)
        with pytest.raises(ValueError):
            simulate_task_pool(np.ones(4), num_warps=1, step=0)

    def test_pool_schedule_tracks_simulation(self):
        """The analytical pool schedule agrees with literally running
        Algorithm 1 on the same costs."""
        rng = np.random.default_rng(3)
        costs = rng.uniform(1, 50, size=5000)
        trace = simulate_task_pool(costs, num_warps=256, step=8)
        sched, _launch = software_assignment(
            costs, V100.with_overrides(cycles_per_atomic=0.0,
                                       cycles_per_request=0.0),
            step=8,
        )
        # same pool, far more warps in the schedule -> schedule never slower
        # than the 256-warp literal run
        assert sched.makespan_cycles <= trace.makespan


class TestHeuristic:
    def test_paper_thresholds(self):
        assert VERTEX_THRESHOLD == 1_000_000
        assert DEGREE_THRESHOLD == 50.0

    def test_choose_small_sparse_hardware(self):
        assert choose_assignment(10_000, 5.0) == "hardware"

    def test_choose_many_vertices_software(self):
        assert choose_assignment(1_000_001, 2.0) == "software"

    def test_choose_dense_software(self):
        assert choose_assignment(100, 51.0) == "software"

    def test_boundary_exclusive(self):
        assert choose_assignment(1_000_000, 50.0) == "hardware"

    def test_custom_thresholds(self):
        assert choose_assignment(10, 5.0, degree_threshold=4.0) == "software"


class TestAssignments:
    def test_hybrid_routes_to_software(self):
        cycles = np.ones(100)
        _sched, _launch, policy = hybrid_assignment(
            cycles, V100, num_vertices=2_000_000, avg_degree=1.0
        )
        assert policy == "software"

    def test_hybrid_routes_to_hardware(self):
        cycles = np.ones(100)
        _sched, _launch, policy = hybrid_assignment(
            cycles, V100, num_vertices=100, avg_degree=1.0
        )
        assert policy == "hardware"

    def test_hardware_launch_shape(self):
        cycles = np.ones(1000)
        sched, launch = hardware_assignment(cycles, V100, warps_per_block=8)
        assert launch.threads_per_block == 256
        assert launch.num_blocks == 125
        assert sched.policy == "hardware"

    def test_software_launch_resident_sized(self):
        cycles = np.ones(10_000)
        _sched, launch = software_assignment(cycles, V100, warps_per_block=8)
        assert launch.num_warps() == V100.max_resident_warps

    def test_tune_warps_per_block_returns_candidate(self):
        rng = np.random.default_rng(4)
        cycles = rng.pareto(1.5, size=3000) * 10 + 1
        best = tune_warps_per_block(cycles, V100)
        assert best in (1, 2, 4, 8, 16)

    def test_software_wins_on_heavy_degree(self):
        """The paper's observation: heavy per-vertex work amortizes the pool
        atomic, so software beats hardware."""
        rng = np.random.default_rng(5)
        heavy = rng.uniform(500, 3000, size=200_000)
        hw, _ = hardware_assignment(heavy, V100, warps_per_block=4)
        sw, _ = software_assignment(heavy, V100, step=8)
        assert sw.makespan_cycles < hw.makespan_cycles

    def test_software_wins_on_many_vertices(self):
        many = np.full(2_000_00, 20.0)
        hw, _ = hardware_assignment(many, V100, warps_per_block=4)
        sw, _ = software_assignment(many, V100, step=8)
        assert sw.makespan_cycles < hw.makespan_cycles
