"""k-way partitioner (METIS substitute): coverage, balance, edge cut."""

import numpy as np
import pytest

from repro.graph import chain, edge_cut, erdos_renyi, partition_kway


class TestPartition:
    def test_every_vertex_assigned(self, small_random):
        p = partition_kway(small_random, 4, seed=0)
        assert np.all(p.assignment >= 0)
        assert np.all(p.assignment < 4)

    def test_balanced_within_ceiling(self, small_random):
        p = partition_kway(small_random, 4, seed=0)
        cap = -(-small_random.num_vertices // 4)
        assert p.sizes.max() <= cap

    def test_sizes_sum(self, small_random):
        p = partition_kway(small_random, 3, seed=1)
        assert p.sizes.sum() == small_random.num_vertices

    def test_k1_trivial(self, small_random):
        p = partition_kway(small_random, 1)
        assert np.all(p.assignment == 0)
        assert edge_cut(small_random, p) == 0

    def test_k_bounds(self, small_random):
        with pytest.raises(ValueError):
            partition_kway(small_random, 0)
        with pytest.raises(ValueError):
            partition_kway(small_random, small_random.num_vertices + 1)

    def test_part_vertices_consistent(self, small_random):
        p = partition_kway(small_random, 4, seed=2)
        total = sum(len(p.part_vertices(i)) for i in range(4))
        assert total == small_random.num_vertices

    def test_edge_cut_counts(self):
        g = chain(10)
        assignment = np.array([0] * 5 + [1] * 5)
        from repro.graph.partition import Partition

        p = Partition(assignment=assignment, k=2)
        assert edge_cut(g, p) == 1  # only the 4->5 edge crosses

    def test_locality_beats_random_cut(self):
        g = chain(64)
        p = partition_kway(g, 4, seed=0)
        rng = np.random.default_rng(0)
        from repro.graph.partition import Partition

        rand = Partition(
            assignment=rng.integers(0, 4, size=g.num_vertices), k=4
        )
        assert edge_cut(g, p) <= edge_cut(g, rand)

    def test_deterministic(self, small_random):
        a = partition_kway(small_random, 4, seed=5)
        b = partition_kway(small_random, 4, seed=5)
        assert np.array_equal(a.assignment, b.assignment)

    def test_dense_graph(self):
        g = erdos_renyi(40, 600, seed=1)
        p = partition_kway(g, 5, seed=1)
        assert p.sizes.sum() == 40
        assert p.sizes.max() <= 8
