"""Table 4 dataset registry: completeness, scaling semantics, determinism."""

import numpy as np
import pytest

from repro.graph import (
    DATASET_ORDER,
    DATASETS,
    FIG8_SEVEN,
    LARGE_FOUR,
    default_scale,
    load_dataset,
)


class TestRegistry:
    def test_eleven_datasets(self):
        assert len(DATASETS) == 11
        assert DATASET_ORDER == [
            "CS", "CR", "PD", "OA", "PI", "DD", "OH", "CL", "ON", "RD", "OT",
        ]

    def test_table4_numbers(self):
        rd = DATASETS["RD"]
        assert rd.num_vertices == 232_000
        assert rd.num_edges == 114_000_000
        assert rd.avg_degree == pytest.approx(491.4, rel=0.01)
        assert DATASETS["CS"].num_vertices == 3_300
        assert DATASETS["OT"].num_edges == 123_700_000

    def test_large_four_subset(self):
        assert LARGE_FOUR == ["CL", "ON", "RD", "OT"]
        for a in LARGE_FOUR:
            assert DATASETS[a].num_edges > 20_000_000

    def test_fig8_seven_fit_gnnadvisor(self):
        for a in FIG8_SEVEN:
            assert DATASETS[a].num_edges <= 20_000_000

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("XX")


class TestScaling:
    def test_small_datasets_full_size(self):
        ds = load_dataset("CR")
        assert ds.scale == 1.0
        assert ds.graph.num_vertices == DATASETS["CR"].num_vertices

    def test_default_scale_caps_edges(self):
        for a in LARGE_FOUR:
            s = default_scale(DATASETS[a], max_edges=2_000_000)
            assert DATASETS[a].num_edges * s <= 2_000_000

    def test_avg_degree_preserved_under_scaling(self):
        ds = load_dataset("RD", max_edges=500_000)
        assert ds.graph.avg_degree == pytest.approx(
            DATASETS["RD"].avg_degree, rel=0.05
        )

    def test_scale_validation(self):
        with pytest.raises(ValueError, match="scale"):
            load_dataset("CR", scale=1.5)
        with pytest.raises(ValueError, match="scale"):
            load_dataset("CR", scale=0.0)

    def test_full_stats_attached(self):
        ds = load_dataset("OT", max_edges=500_000)
        assert ds.full_num_vertices == 2_400_000
        assert ds.full_avg_degree == pytest.approx(51.5, rel=0.02)
        assert ds.abbr == "OT"

    def test_deterministic(self):
        a = load_dataset("PI", max_edges=200_000)
        b = load_dataset("PI", max_edges=200_000)
        assert np.array_equal(a.graph.indices, b.graph.indices)

    def test_hub_cap_applied(self):
        ds = load_dataset("RD", max_edges=500_000)
        # capped at the real Reddit max degree (×1.5 statistical headroom)
        assert ds.graph.in_degrees.max() <= 21_657 * 1.5

    def test_family_shapes(self):
        oh = load_dataset("OH", max_edges=2_000_000)  # uniform
        rd = load_dataset("RD", max_edges=500_000)  # power law
        cv_oh = oh.graph.in_degrees.std() / max(oh.graph.avg_degree, 1e-9)
        cv_rd = rd.graph.in_degrees.std() / max(rd.graph.avg_degree, 1e-9)
        assert cv_rd > 2 * cv_oh

    def test_oa_regular_ish(self):
        oa = load_dataset("OA")
        cv = oa.graph.in_degrees.std() / oa.graph.avg_degree
        assert cv < 1.0  # narrow distribution
