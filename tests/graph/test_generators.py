"""Synthetic graph generators: shape, determinism, and degree properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    chain,
    complete,
    empty,
    erdos_renyi,
    power_law,
    regular,
    rmat,
    star,
)


class TestErdosRenyi:
    def test_edge_count_exact(self):
        g = erdos_renyi(100, 500, seed=1)
        assert g.num_edges == 500
        assert g.num_vertices == 100

    def test_no_self_loops_by_default(self):
        g = erdos_renyi(50, 400, seed=2)
        src, dst = g.edge_list()
        assert not np.any(src == dst)

    def test_self_loops_allowed(self):
        g = erdos_renyi(10, 2000, seed=3, allow_self_loops=True)
        src, dst = g.edge_list()
        assert np.any(src == dst)  # statistically certain at this density

    def test_deterministic(self):
        a = erdos_renyi(40, 100, seed=9)
        b = erdos_renyi(40, 100, seed=9)
        assert np.array_equal(a.indices, b.indices)

    def test_different_seeds_differ(self):
        a = erdos_renyi(40, 100, seed=9)
        b = erdos_renyi(40, 100, seed=10)
        assert not np.array_equal(a.indices, b.indices)


class TestPowerLaw:
    def test_edge_count(self):
        g = power_law(200, 2000, seed=0)
        assert g.num_edges == 2000

    def test_skewed_degrees(self):
        g = power_law(500, 5000, exponent=2.0, seed=0)
        deg = g.in_degrees
        # heavy tail: hottest vertex far above the mean
        assert deg.max() > 5 * deg.mean()

    def test_higher_exponent_less_skew(self):
        lo = power_law(500, 5000, exponent=2.0, seed=0)
        hi = power_law(500, 5000, exponent=3.5, seed=0)
        assert lo.in_degrees.max() > hi.in_degrees.max()

    def test_max_degree_cap(self):
        capped = power_law(500, 5000, exponent=2.0, max_degree=60, seed=0)
        # expected-degree cap: allow modest statistical overshoot
        assert capped.in_degrees.max() <= 60 * 1.5

    def test_invalid_exponent(self):
        with pytest.raises(ValueError, match="exponent"):
            power_law(10, 10, exponent=1.0)

    def test_no_self_loops(self):
        g = power_law(100, 1000, seed=4)
        src, dst = g.edge_list()
        assert not np.any(src == dst)


class TestRmat:
    def test_vertex_count_power_of_two(self):
        g = rmat(6, 4, seed=0)
        assert g.num_vertices == 64
        assert g.num_edges == 64 * 4

    def test_skewed(self):
        g = rmat(8, 8, seed=1)
        assert g.in_degrees.max() > 3 * g.in_degrees.mean()

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat(4, 2, a=0.5, b=0.4, c=0.3)

    def test_deterministic(self):
        a = rmat(5, 3, seed=7)
        b = rmat(5, 3, seed=7)
        assert np.array_equal(a.indices, b.indices)


class TestRegularAndPathological:
    def test_regular_degrees(self):
        g = regular(64, 5, seed=0)
        assert np.all(g.in_degrees == 5)

    def test_star_degrees(self):
        g = star(10)
        assert g.in_degrees[0] == 9
        assert np.all(g.in_degrees[1:] == 0)

    def test_star_minimum(self):
        with pytest.raises(ValueError):
            star(0)
        assert star(1).num_edges == 0

    def test_chain(self):
        g = chain(10)
        assert g.num_edges == 9
        assert g.in_degrees[0] == 0
        assert np.all(g.in_degrees[1:] == 1)

    def test_complete(self):
        g = complete(6)
        assert g.num_edges == 30
        assert np.all(g.in_degrees == 5)

    def test_empty(self):
        g = empty(7)
        assert g.num_edges == 0
        assert g.num_vertices == 7


@given(
    n=st.integers(2, 60),
    m=st.integers(0, 300),
    seed=st.integers(0, 5),
)
@settings(max_examples=30, deadline=None)
def test_erdos_renyi_property(n, m, seed):
    g = erdos_renyi(n, m, seed=seed)
    assert g.num_edges == m
    assert g.in_degrees.sum() == m
    src, dst = g.edge_list()
    assert not np.any(src == dst)


@given(n=st.integers(2, 50), m=st.integers(1, 200))
@settings(max_examples=30, deadline=None)
def test_power_law_property(n, m):
    g = power_law(n, m, seed=1)
    assert g.num_edges == m
    assert g.in_degrees.sum() == m
