"""Vertex reordering: permutation validity and structural preservation."""

import numpy as np

from repro.graph import bfs_locality, degree_sort, identity_order


def _is_perm(p, n):
    return np.array_equal(np.sort(p), np.arange(n))


class TestIdentity:
    def test_identity_noop(self, small_random):
        r = identity_order(small_random)
        assert _is_perm(r.perm, small_random.num_vertices)
        assert np.array_equal(r.perm, np.arange(small_random.num_vertices))
        assert r.seconds == 0.0
        assert r.graph is small_random


class TestDegreeSort:
    def test_permutation_valid(self, skewed_graph):
        r = degree_sort(skewed_graph)
        assert _is_perm(r.perm, skewed_graph.num_vertices)

    def test_descending_degrees(self, skewed_graph):
        r = degree_sort(skewed_graph)
        deg = r.graph.in_degrees
        assert np.all(np.diff(deg) <= 0)

    def test_ascending(self, skewed_graph):
        r = degree_sort(skewed_graph, descending=False)
        assert np.all(np.diff(r.graph.in_degrees) >= 0)

    def test_structure_preserved(self, skewed_graph):
        r = degree_sort(skewed_graph)
        assert r.graph.num_edges == skewed_graph.num_edges
        assert sorted(r.graph.in_degrees) == sorted(skewed_graph.in_degrees)

    def test_cost_recorded(self, skewed_graph):
        assert degree_sort(skewed_graph).seconds >= 0.0

    def test_edges_relabelled_consistently(self, tiny_graph):
        r = degree_sort(tiny_graph)
        src, dst = tiny_graph.edge_list()
        psrc, pdst = r.graph.edge_list()
        orig = sorted(zip(r.perm[src].tolist(), r.perm[dst].tolist(), strict=True))
        assert orig == sorted(zip(psrc.tolist(), pdst.tolist(), strict=True))


class TestBFS:
    def test_permutation_valid(self, small_random):
        r = bfs_locality(small_random)
        assert _is_perm(r.perm, small_random.num_vertices)

    def test_structure_preserved(self, small_random):
        r = bfs_locality(small_random)
        assert r.graph.num_edges == small_random.num_edges
        assert sorted(r.graph.in_degrees) == sorted(small_random.in_degrees)

    def test_source_first(self, small_random):
        r = bfs_locality(small_random, source=5)
        assert r.perm[5] == 0

    def test_disconnected_vertices_covered(self, chain_graph):
        # a chain plus isolated vertices still yields a full permutation
        r = bfs_locality(chain_graph, source=0)
        assert _is_perm(r.perm, chain_graph.num_vertices)

    def test_neighbors_get_close_ids(self, chain_graph):
        # on a path graph BFS order is the path order: neighbours adjacent
        r = bfs_locality(chain_graph, source=0)
        src, dst = r.graph.edge_list()
        assert np.abs(src - dst).max() == 1
