"""CSRGraph container: construction, validation, views, conversions."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, from_edge_list, from_scipy


class TestConstruction:
    def test_from_edge_list_basic(self, tiny_graph):
        assert tiny_graph.num_vertices == 4
        assert tiny_graph.num_edges == 6

    def test_neighbors_sorted_per_destination(self, tiny_graph):
        assert sorted(tiny_graph.neighbors(0).tolist()) == [1, 2, 3]
        assert sorted(tiny_graph.neighbors(1).tolist()) == [0, 2]
        assert tiny_graph.neighbors(3).tolist() == []

    def test_empty_graph(self):
        g = from_edge_list([], [], 5)
        assert g.num_edges == 0
        assert g.in_degrees.tolist() == [0] * 5

    def test_single_vertex_self_loop(self):
        g = from_edge_list([0], [0], 1)
        assert g.num_edges == 1
        assert g.neighbors(0).tolist() == [0]

    def test_parallel_edges_kept_without_dedup(self):
        g = from_edge_list([0, 0], [1, 1], 2)
        assert g.num_edges == 2

    def test_dedup_removes_parallel_edges(self):
        g = from_edge_list([0, 0, 1], [1, 1, 0], 2, dedup=True)
        assert g.num_edges == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            from_edge_list([0, 1], [0], 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            from_edge_list([0], [5], 2)

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            from_edge_list([-1], [0], 2)


class TestValidation:
    def test_indptr_length_checked(self):
        with pytest.raises(ValueError, match="indptr length"):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([0]), num_vertices=3)

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            CSRGraph(
                indptr=np.array([1, 1, 2]), indices=np.array([0, 0]), num_vertices=2
            )

    def test_indptr_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(
                indptr=np.array([0, 2, 1]), indices=np.array([0]), num_vertices=2
            )

    def test_indptr_tail_matches_indices(self):
        with pytest.raises(ValueError, match="indptr\\[-1\\]"):
            CSRGraph(
                indptr=np.array([0, 1, 3]), indices=np.array([0]), num_vertices=2
            )

    def test_indices_range_checked(self):
        with pytest.raises(ValueError, match="out-of-range"):
            CSRGraph(
                indptr=np.array([0, 1]), indices=np.array([7]), num_vertices=1
            )


class TestDegrees:
    def test_in_degrees(self, tiny_graph):
        assert tiny_graph.in_degrees.tolist() == [3, 2, 1, 0]

    def test_out_degrees(self, tiny_graph):
        # sources: 1,2,3,0,2,3 -> counts per vertex
        assert tiny_graph.out_degrees.tolist() == [1, 1, 2, 2]

    def test_degree_sums_match_edges(self, small_random):
        assert small_random.in_degrees.sum() == small_random.num_edges
        assert small_random.out_degrees.sum() == small_random.num_edges

    def test_avg_and_max(self, tiny_graph):
        assert tiny_graph.avg_degree == pytest.approx(1.5)
        assert tiny_graph.max_degree == 3

    def test_avg_degree_empty(self):
        g = CSRGraph(
            indptr=np.zeros(1, dtype=np.int64),
            indices=np.zeros(0, dtype=np.int64),
            num_vertices=0,
        )
        assert g.avg_degree == 0.0


class TestConversions:
    def test_to_scipy_roundtrip(self, small_random):
        mat = small_random.to_scipy()
        back = from_scipy(mat)
        assert np.array_equal(back.indptr, small_random.indptr)
        assert np.array_equal(back.indices, small_random.indices)

    def test_to_scipy_weights(self, tiny_graph):
        w = np.arange(1, 7, dtype=np.float32)
        mat = tiny_graph.to_scipy(weights=w)
        assert mat.sum() == w.sum()

    def test_to_scipy_weight_shape_checked(self, tiny_graph):
        with pytest.raises(ValueError, match="one entry per edge"):
            tiny_graph.to_scipy(weights=np.ones(3))

    def test_from_scipy_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            from_scipy(sp.csr_matrix(np.ones((2, 3))))

    def test_reverse_swaps_degrees(self, small_random):
        rev = small_random.reverse()
        assert np.array_equal(rev.in_degrees, small_random.out_degrees)
        assert np.array_equal(rev.out_degrees, small_random.in_degrees)

    def test_reverse_twice_identity(self, small_random):
        rr = small_random.reverse().reverse()
        assert np.array_equal(
            rr.to_scipy().toarray(), small_random.to_scipy().toarray()
        )

    def test_edge_list_roundtrip(self, small_random):
        src, dst = small_random.edge_list()
        back = from_edge_list(src, dst, small_random.num_vertices)
        assert np.array_equal(back.indptr, small_random.indptr)
        assert np.array_equal(np.sort(back.indices), np.sort(small_random.indices))


class TestPermuteSubgraph:
    def test_permute_preserves_degree_multiset(self, small_random, rng):
        perm = rng.permutation(small_random.num_vertices)
        p = small_random.permute(perm)
        assert sorted(p.in_degrees) == sorted(small_random.in_degrees)
        assert p.num_edges == small_random.num_edges

    def test_permute_maps_edges(self, tiny_graph):
        perm = np.array([3, 2, 1, 0])
        p = tiny_graph.permute(perm)
        # edge 1->0 becomes 2->3
        assert 2 in p.neighbors(3)

    def test_permute_rejects_non_permutation(self, tiny_graph):
        with pytest.raises(ValueError, match="permutation"):
            tiny_graph.permute(np.array([0, 0, 1, 2]))

    def test_subgraph_induced(self, tiny_graph):
        sub = tiny_graph.subgraph(np.array([0, 1, 2]))
        assert sub.num_vertices == 3
        # edges among {0,1,2}: 1->0, 2->0, 0->1, 2->1 (3->* dropped)
        assert sub.num_edges == 4

    def test_stats_keys(self, small_random):
        s = small_random.stats()
        assert s["num_edges"] == small_random.num_edges
        assert s["max_degree"] == small_random.max_degree

    def test_fingerprint_is_content_hash(self, small_random, tiny_graph):
        fp = small_random.fingerprint()
        assert fp == small_random.fingerprint()  # memoized, stable
        assert fp != tiny_graph.fingerprint()
        # identical content in a fresh object hashes identically
        clone = CSRGraph(
            indptr=small_random.indptr.copy(),
            indices=small_random.indices.copy(),
            num_vertices=small_random.num_vertices,
            name="clone",
        )
        assert clone.fingerprint() == fp

    def test_fingerprint_values_variant(self, small_random):
        base = small_random.fingerprint()
        w = np.ones(small_random.num_edges, dtype=np.float32)
        weighted = small_random.fingerprint(values=w)
        assert weighted != base
        assert weighted == small_random.fingerprint(values=w.copy())
        assert weighted != small_random.fingerprint(values=w + 1.0)
        with pytest.raises(ValueError):
            small_random.fingerprint(values=w[:-1])


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=120
    )
)
@settings(max_examples=40, deadline=None)
def test_from_edge_list_property(edges):
    """Every input edge appears exactly once, grouped by destination."""
    src = [e[0] for e in edges]
    dst = [e[1] for e in edges]
    g = from_edge_list(src, dst, 20)
    assert g.num_edges == len(edges)
    got = sorted(zip(g.edge_list()[0].tolist(), g.edge_list()[1].tolist(), strict=True))
    assert got == sorted(zip(src, dst, strict=True))
    assert np.all(np.diff(g.indptr) >= 0)
