"""Counter-model invariants — the quantitative claims behind Obs I-III."""

import numpy as np
import pytest

from repro.gpusim import V100
from repro.kernels import (
    EdgeCentricKernel,
    NeighborGroupKernel,
    PullThreadKernel,
    PushKernel,
    TLPGNNKernel,
    build_groups,
    feature_row_sectors,
    feature_rounds,
    three_kernel_gat,
)
from repro.kernels.neighbor_group import group_owners

from ..conftest import make_workload


class TestHelpers:
    def test_feature_row_sectors(self):
        assert feature_row_sectors(8) == 1
        assert feature_row_sectors(32) == 4
        assert feature_row_sectors(33) == 5
        with pytest.raises(ValueError):
            feature_row_sectors(0)

    def test_feature_rounds(self):
        assert feature_rounds(32) == 1
        assert feature_rounds(33) == 2
        assert feature_rounds(16, lanes=16) == 1
        with pytest.raises(ValueError):
            feature_rounds(8, lanes=0)

    def test_build_groups(self):
        sizes = build_groups(np.array([0, 1, 5, 8]), 4)
        assert sizes.tolist() == [1, 4, 1, 4, 4]
        owners = group_owners(np.array([0, 1, 5, 8]), 4)
        assert owners.tolist() == [1, 2, 2, 3, 3]

    def test_build_groups_validates(self):
        with pytest.raises(ValueError):
            build_groups(np.array([1]), 0)


class TestAtomicFreedom:
    """Observation I: pull-style kernels issue zero atomics; scatter-style
    kernels issue one atomic op per edge per feature element."""

    def test_tlpgnn_atomic_free(self, skewed_graph):
        wl = make_workload(skewed_graph, "gcn", 16)
        stats, _ = TLPGNNKernel().analyze(wl)
        assert stats.atomic_ops == 0
        assert stats.atomic_bytes == 0

    def test_pull_thread_atomic_free(self, skewed_graph):
        wl = make_workload(skewed_graph, "gcn", 16)
        stats, _ = PullThreadKernel().analyze(wl)
        assert stats.atomic_ops == 0

    @pytest.mark.parametrize("kernel", [PushKernel(), EdgeCentricKernel()])
    def test_scatter_ops_exact(self, skewed_graph, kernel):
        wl = make_workload(skewed_graph, "gin", 16)
        stats, _ = kernel.analyze(wl)
        assert stats.atomic_ops == skewed_graph.num_edges * 16
        assert stats.atomic_bytes > 0
        assert 0.0 <= stats.atomic_collision_rate <= 1.0

    def test_neighbor_group_ops_scale_with_groups(self, skewed_graph):
        wl = make_workload(skewed_graph, "gin", 16)
        k = NeighborGroupKernel(group_size=4)
        stats, _ = k.analyze(wl)
        n_groups = build_groups(skewed_graph.in_degrees, 4).size
        assert stats.atomic_ops == n_groups * 16

    def test_larger_groups_fewer_atomics(self, skewed_graph):
        wl = make_workload(skewed_graph, "gin", 16)
        small, _ = NeighborGroupKernel(group_size=2).analyze(wl)
        large, _ = NeighborGroupKernel(group_size=16).analyze(wl)
        assert large.atomic_ops < small.atomic_ops


class TestCoalescing:
    """Observation II: warp-per-vertex keeps sector/request near the
    fully-coalesced minimum; thread-per-vertex explodes it."""

    def test_sector_per_request_ordering(self, small_random):
        # uniform degrees like the paper's ovcar_8h: most lanes stay active,
        # so every scattered request touches many sectors
        wl = make_workload(small_random, "gcn", 128)
        warp, _ = TLPGNNKernel(group_size=16, assignment="hardware").analyze(wl)
        thread, _ = PullThreadKernel().analyze(wl)
        assert thread.sectors_per_request > 3 * warp.sectors_per_request
        assert warp.sectors_per_request < 4.5

    def test_thread_kernel_moves_more_dram(self, skewed_graph):
        wl = make_workload(skewed_graph, "gcn", 128)
        warp, _ = TLPGNNKernel(assignment="hardware").analyze(wl)
        thread, _ = PullThreadKernel().analyze(wl)
        assert thread.load_bytes > warp.load_bytes

    def test_feature_dim_scales_traffic(self, small_random):
        small = make_workload(small_random, "gin", 16)
        big = make_workload(small_random, "gin", 128)
        s_stats, _ = TLPGNNKernel(assignment="hardware").analyze(small)
        b_stats, _ = TLPGNNKernel(assignment="hardware").analyze(big)
        ratio = b_stats.load_bytes / s_stats.load_bytes
        assert 3.0 < ratio < 9.0  # ~8x rows + fixed index traffic


class TestRegisterCaching:
    def test_cache_cuts_requests_and_traffic(self, skewed_graph):
        wl = make_workload(skewed_graph, "gcn", 64)
        on, _ = TLPGNNKernel(assignment="hardware").analyze(wl)
        off, _ = TLPGNNKernel(
            assignment="hardware", register_cache=False
        ).analyze(wl)
        assert off.load_requests > on.load_requests
        assert off.total_bytes > on.total_bytes
        assert off.store_requests > on.store_requests

    def test_cache_speeds_up(self, skewed_graph):
        wl = make_workload(skewed_graph, "gcn", 64)
        on = TLPGNNKernel(assignment="hardware").execute(wl)
        off = TLPGNNKernel(assignment="hardware", register_cache=False).execute(wl)
        assert off.timing.gpu_seconds > on.timing.gpu_seconds


class TestFusion:
    """Observation III: the fused GAT kernel materializes nothing and moves
    less memory than the 3-kernel pipeline."""

    def test_fused_no_workspace(self, skewed_graph):
        wl = make_workload(skewed_graph, "gat", 32)
        stats, _ = TLPGNNKernel().analyze(wl)
        assert stats.workspace_bytes == 0

    def test_three_kernel_materializes_edges(self, skewed_graph):
        wl = make_workload(skewed_graph, "gat", 32)
        _, pipe, _ = three_kernel_gat(wl)
        assert pipe.num_kernels == 3
        assert pipe.total_workspace_bytes >= 2 * 4 * skewed_graph.num_edges

    def test_fused_less_traffic(self, skewed_graph):
        wl = make_workload(skewed_graph, "gat", 32)
        fused, _ = TLPGNNKernel().analyze(wl)
        _, pipe, _ = three_kernel_gat(wl)
        assert fused.total_bytes < pipe.total_bytes


class TestScheduling:
    def test_hybrid_hint_switches_policy(self, small_random):
        wl = make_workload(small_random, "gcn", 16)
        hw = TLPGNNKernel(assignment="hybrid")  # small graph -> hardware
        _, sched_hw = hw.analyze(wl)
        assert sched_hw.policy == "hardware"
        sw = TLPGNNKernel(
            assignment="hybrid", hint_num_vertices=2_000_000, hint_avg_degree=2.0
        )
        _, sched_sw = sw.analyze(wl)
        assert sched_sw.policy == "software"

    def test_degree_hint_switches_policy(self, small_random):
        wl = make_workload(small_random, "gcn", 16)
        k = TLPGNNKernel(assignment="hybrid", hint_avg_degree=100.0)
        _, sched = k.analyze(wl)
        assert sched.policy == "software"

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            TLPGNNKernel(group_size=12)
        with pytest.raises(ValueError):
            TLPGNNKernel(assignment="magic")

    def test_edge_centric_balanced_units(self, skewed_graph):
        wl = make_workload(skewed_graph, "gin", 16)
        stats, _ = EdgeCentricKernel(edges_per_warp=32).analyze(wl)
        cv = stats.warp_cycles.std() / stats.warp_cycles.mean()
        t_stats, _ = TLPGNNKernel(assignment="hardware").analyze(wl)
        cv_v = t_stats.warp_cycles.std() / t_stats.warp_cycles.mean()
        assert cv < cv_v  # edge chunks are balanced, vertices are not


class TestEdgeCases:
    def test_empty_graph(self):
        from repro.graph import empty

        wl = make_workload(empty(10), "gin", 16)
        stats, sched = TLPGNNKernel(assignment="hardware").analyze(wl)
        assert stats.atomic_ops == 0
        out = TLPGNNKernel().run(wl)
        assert np.allclose(out, wl.X)  # GIN self term only

    def test_single_edge(self):
        from repro.graph import from_edge_list

        g = from_edge_list([0], [1], 2)
        wl = make_workload(g, "gcn", 8)
        stats, _ = TLPGNNKernel(assignment="hardware").analyze(wl)
        stats.validate()
        assert stats.load_requests > 0
