"""Validate the analytical counter formulas against the micro-simulator.

The micro-simulator replays each kernel's access pattern address by address
on small graphs; ``analyze()`` must agree — exactly for the uniform-access
TLPGNN family, within tolerance for the scattered baselines (whose
analytical model upper-bounds sector counts by ignoring incidental
lane-address sharing).
"""

import numpy as np
import pytest

from repro.gpusim import MicroSim
from repro.kernels import (
    EdgeCentricKernel,
    NeighborGroupKernel,
    PullThreadKernel,
    PushKernel,
    TLPGNNKernel,
)
from repro.models import reference_aggregate

from ..conftest import make_workload


def _run_both(kernel, wl):
    sim = MicroSim()
    out = kernel.trace(wl, sim)
    stats, _ = kernel.analyze(wl)
    np.testing.assert_allclose(
        out, reference_aggregate(wl), rtol=1e-4, atol=1e-5
    )
    return sim, stats


class TestTLPGNNExact:
    @pytest.mark.parametrize("model", ["gcn", "gin"])
    @pytest.mark.parametrize("feat", [8, 16, 32, 64])
    def test_requests_and_sectors_exact(self, small_random, model, feat):
        kernel = TLPGNNKernel(assignment="hardware")
        wl = make_workload(small_random, model, feat)
        sim, stats = _run_both(kernel, wl)
        assert sim.load_requests == stats.load_requests
        assert sim.store_requests == stats.store_requests
        assert sim.load_sectors == stats.l1_load_sectors
        assert sim.store_sectors == stats.l1_store_sectors
        assert sim.atomic_ops == stats.atomic_ops == 0

    def test_register_cache_off_exact(self, small_random):
        kernel = TLPGNNKernel(assignment="hardware", register_cache=False)
        wl = make_workload(small_random, "gin", 16)
        sim, stats = _run_both(kernel, wl)
        assert sim.load_requests == stats.load_requests
        assert sim.load_sectors == stats.l1_load_sectors
        assert sim.store_requests == stats.store_requests

    def test_half_warp_exact(self, small_random):
        kernel = TLPGNNKernel(group_size=16, assignment="hardware")
        wl = make_workload(small_random, "gcn", 32)
        sim, stats = _run_both(kernel, wl)
        assert sim.load_requests == stats.load_requests
        assert sim.load_sectors == stats.l1_load_sectors

    def test_gat_fused_requests_exact(self, small_random):
        """Attention re-read sectors are L1-discounted in analyze(), so only
        request counts are exact against the raw trace."""
        kernel = TLPGNNKernel(assignment="hardware")
        wl = make_workload(small_random, "gat", 16)
        sim, stats = _run_both(kernel, wl)
        assert sim.load_requests == stats.load_requests
        assert sim.store_requests == stats.store_requests
        # the trace counts every pass's sectors; analyze discounts re-reads
        assert stats.l1_load_sectors <= sim.load_sectors


class TestScatterTolerance:
    def test_push_counts(self, small_random):
        kernel = PushKernel()
        wl = make_workload(small_random, "gin", 16)
        sim, stats = _run_both(kernel, wl)
        assert sim.load_requests == stats.load_requests
        assert sim.atomic_requests == stats.atomic_requests
        assert sim.atomic_ops == stats.atomic_ops
        assert sim.load_sectors == stats.l1_load_sectors
        assert sim.atomic_sectors == stats.l1_atomic_sectors

    def test_edge_centric_counts(self, small_random):
        kernel = EdgeCentricKernel()
        wl = make_workload(small_random, "gin", 16)
        sim, stats = _run_both(kernel, wl)
        assert sim.atomic_ops == stats.atomic_ops
        assert sim.atomic_requests == stats.atomic_requests
        assert sim.load_sectors == stats.l1_load_sectors

    def test_neighbor_group_counts(self, small_random):
        kernel = NeighborGroupKernel(group_size=4)
        wl = make_workload(small_random, "gin", 16)
        sim, stats = _run_both(kernel, wl)
        assert sim.atomic_ops == stats.atomic_ops
        assert sim.load_requests == stats.load_requests
        assert sim.load_sectors == stats.l1_load_sectors

    def test_pull_thread_upper_bound(self, small_random):
        """Analytical sectors ignore incidental sharing between lanes, so
        they upper-bound the trace within 35%."""
        kernel = PullThreadKernel()
        wl = make_workload(small_random, "gcn", 16)
        sim, stats = _run_both(kernel, wl)
        assert stats.load_requests == sim.load_requests
        assert stats.l1_load_sectors >= sim.load_sectors
        assert stats.l1_load_sectors <= 1.35 * sim.load_sectors
        assert stats.l1_store_sectors == sim.store_sectors

    def test_pull_thread_divergence_recorded(self, skewed_graph):
        kernel = PullThreadKernel()
        wl = make_workload(skewed_graph, "gin", 8)
        sim = MicroSim()
        kernel.trace(wl, sim)
        stats, _ = kernel.analyze(wl)
        assert sim.divergent_lanes > 0
        assert stats.divergent_lanes == pytest.approx(
            sim.divergent_lanes, rel=0.25
        )
