"""Property tests: every kernel's counters stay internally consistent on
arbitrary graphs, feature sizes, and models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import erdos_renyi, power_law
from repro.gpusim import V100
from repro.kernels import (
    EdgeCentricKernel,
    EdgeParallelWarpKernel,
    NeighborGroupKernel,
    PullCTAKernel,
    PullThreadKernel,
    PushKernel,
    TLPGNNKernel,
)

from ..conftest import make_workload

KERNEL_FACTORIES = [
    lambda: TLPGNNKernel(),
    lambda: TLPGNNKernel(group_size=16, assignment="hardware"),
    lambda: TLPGNNKernel(register_cache=False, assignment="software"),
    lambda: PullThreadKernel(),
    lambda: PullCTAKernel(),
    lambda: EdgeParallelWarpKernel(),
    lambda: PushKernel(),
    lambda: EdgeCentricKernel(),
    lambda: NeighborGroupKernel(),
]


@given(
    n=st.integers(2, 80),
    m=st.integers(0, 400),
    feat=st.sampled_from([8, 16, 32, 48, 64]),
    kidx=st.integers(0, len(KERNEL_FACTORIES) - 1),
    skewed=st.booleans(),
    model=st.sampled_from(["gcn", "gin", "sage", "gat"]),
    seed=st.integers(0, 50),
)
@settings(max_examples=120, deadline=None)
def test_stats_invariants(n, m, feat, kidx, skewed, model, seed):
    g = (
        power_law(n, max(m, 1), seed=seed)
        if skewed and m > 0
        else erdos_renyi(n, m, seed=seed)
    )
    wl = make_workload(g, model, feat, seed=seed)
    kernel = KERNEL_FACTORIES[kidx]()
    if not kernel.supports(wl):
        return
    stats, sched = kernel.analyze(wl, V100)
    stats.validate()

    # structural invariants every kernel must satisfy
    assert stats.load_requests > 0 or g.num_edges == 0
    assert stats.total_bytes >= 0
    assert sched.makespan_cycles >= 0
    assert np.all(stats.warp_cycles >= 0)
    if stats.total_requests:
        assert stats.sectors_per_request >= 0.9  # a request touches >=1 sector
    # output must be written somewhere: plain stores or atomic merges
    # (atomic-merge kernels legitimately write nothing on an empty graph)
    assert (
        stats.store_sectors + stats.atomic_sectors > 0
        or g.num_vertices == 0
        or g.num_edges == 0
    )
    # pull-family kernels never issue atomics
    if isinstance(kernel, (TLPGNNKernel, PullThreadKernel, PullCTAKernel)):
        assert stats.atomic_ops == 0
    # makespan at least the critical path of any single unit
    if stats.warp_cycles.size:
        assert sched.makespan_cycles >= stats.warp_cycles.max() * 0.999


@given(
    n=st.integers(2, 60),
    m=st.integers(1, 300),
    seed=st.integers(0, 20),
)
@settings(max_examples=50, deadline=None)
def test_execute_time_positive_and_finite(n, m, seed):
    g = erdos_renyi(n, m, seed=seed)
    wl = make_workload(g, "gcn", 16, seed=seed)
    res = TLPGNNKernel().execute(wl)
    assert np.isfinite(res.timing.gpu_seconds)
    assert res.timing.gpu_seconds > 0
    assert 0.0 <= res.timing.occupancy <= 1.0
    assert 0.0 <= res.timing.sm_utilization <= 1.0
