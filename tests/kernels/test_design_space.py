"""The paper's design-space arguments (§4.2-4.3), quantified.

Level 1: thread-per-vertex vs warp-per-vertex vs CTA-per-vertex — the warp
mapping must win.  Level 2: edge parallelism vs feature parallelism within
the warp — feature parallelism must win.
"""

import numpy as np
import pytest

from repro.gpusim import MicroSim
from repro.kernels import (
    EdgeParallelWarpKernel,
    PullCTAKernel,
    PullThreadKernel,
    TLPGNNKernel,
)
from repro.models import reference_aggregate

from ..conftest import make_workload


class TestCorrectness:
    @pytest.mark.parametrize(
        "kernel",
        [
            PullCTAKernel(),
            PullCTAKernel(warps_per_block=1),
            PullCTAKernel(warps_per_block=8),
            EdgeParallelWarpKernel(),
        ],
        ids=lambda k: k.name,
    )
    @pytest.mark.parametrize("model", ["gcn", "gin", "sage"])
    def test_matches_reference(self, small_random, kernel, model):
        wl = make_workload(small_random, model, 16)
        np.testing.assert_allclose(
            kernel.run(wl), reference_aggregate(wl), rtol=1e-4, atol=1e-5
        )

    def test_cta_validates(self):
        with pytest.raises(ValueError):
            PullCTAKernel(warps_per_block=0)

    def test_edge_parallel_skips_attention(self, small_random):
        wl = make_workload(small_random, "gat", 16)
        assert not EdgeParallelWarpKernel().supports(wl)


class TestTraceAgreement:
    def test_cta_exact(self, small_random):
        wl = make_workload(small_random, "gcn", 16)
        for W in (1, 4, 8):
            k = PullCTAKernel(warps_per_block=W)
            sim = MicroSim()
            k.trace(wl, sim)
            stats, _ = k.analyze(wl)
            assert sim.load_requests == stats.load_requests
            assert sim.load_sectors == stats.l1_load_sectors
            assert sim.store_requests == stats.store_requests

    def test_edge_parallel_requests_exact(self, small_random):
        wl = make_workload(small_random, "gcn", 16)
        k = EdgeParallelWarpKernel()
        sim = MicroSim()
        k.trace(wl, sim)
        stats, _ = k.analyze(wl)
        assert sim.load_requests == stats.load_requests
        # scattered-row sectors: analyze upper-bounds incidental sharing
        assert sim.load_sectors <= stats.l1_load_sectors <= 1.2 * sim.load_sectors


class TestLevel1Choice:
    """§4.2: warp-per-vertex beats thread- and CTA-per-vertex."""

    @pytest.fixture(scope="class")
    def timings(self):
        from repro.bench import BenchConfig, get_dataset, make_features
        from repro.models import build_conv

        cfg = BenchConfig(feat_dim=32, max_edges=150_000, seed=7)
        ds = get_dataset("OH", cfg)
        X = make_features(ds.graph.num_vertices, 32, seed=7)
        wl = build_conv("gcn", ds.graph, X)
        spec = cfg.spec_for(ds)
        return {
            "thread": PullThreadKernel().execute(wl, spec),
            "warp": TLPGNNKernel(assignment="hardware").execute(wl, spec),
            "cta": PullCTAKernel(warps_per_block=4).execute(wl, spec),
        }

    def test_warp_beats_thread(self, timings):
        assert timings["warp"].timing.gpu_seconds < timings["thread"].timing.gpu_seconds

    def test_warp_beats_cta(self, timings):
        assert timings["warp"].timing.gpu_seconds < timings["cta"].timing.gpu_seconds

    def test_cta_pays_sync_instructions(self, timings):
        # block-wide barriers + smem staging issue extra instructions
        assert timings["cta"].stats.instructions > timings["warp"].stats.instructions

    def test_thread_uncoalesced(self, timings):
        assert (
            timings["thread"].stats.sectors_per_request
            > 2 * timings["warp"].stats.sectors_per_request
        )


class TestLevel2Choice:
    """§4.3: feature parallelism beats edge parallelism within the warp."""

    @pytest.fixture(scope="class")
    def timings(self):
        from repro.bench import BenchConfig, get_dataset, make_features
        from repro.models import build_conv

        cfg = BenchConfig(feat_dim=32, max_edges=150_000, seed=7)
        ds = get_dataset("PI", cfg)
        X = make_features(ds.graph.num_vertices, 32, seed=7)
        wl = build_conv("gcn", ds.graph, X)
        spec = cfg.spec_for(ds)
        return {
            "feature": TLPGNNKernel(assignment="hardware").execute(wl, spec),
            "edge": EdgeParallelWarpKernel().execute(wl, spec),
        }

    def test_feature_parallel_faster(self, timings):
        assert (
            timings["feature"].timing.gpu_seconds
            < timings["edge"].timing.gpu_seconds
        )

    def test_feature_parallel_coalesced(self, timings):
        assert (
            timings["feature"].stats.sectors_per_request
            < timings["edge"].stats.sectors_per_request
        )

    def test_feature_parallel_less_dram(self, timings):
        assert timings["feature"].stats.load_bytes < timings["edge"].stats.load_bytes
