"""Every kernel must produce the reference convolution output exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import erdos_renyi, power_law
from repro.kernels import (
    EdgeCentricKernel,
    NeighborGroupKernel,
    PullThreadKernel,
    PushKernel,
    TLPGNNKernel,
    three_kernel_gat,
)
from repro.models import MODEL_NAMES, reference_aggregate

from ..conftest import make_workload

ALL_KERNELS = [
    TLPGNNKernel(),
    TLPGNNKernel(group_size=16, assignment="hardware"),
    TLPGNNKernel(group_size=8, assignment="software"),
    TLPGNNKernel(register_cache=False, assignment="hardware"),
    TLPGNNKernel(assignment="static"),
    PullThreadKernel(),
    PushKernel(),
    EdgeCentricKernel(),
    EdgeCentricKernel(edges_per_warp=7),
    NeighborGroupKernel(group_size=3),
    NeighborGroupKernel(group_size=16),
]


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
@pytest.mark.parametrize("model", MODEL_NAMES)
def test_kernel_matches_reference(small_random, kernel, model):
    wl = make_workload(small_random, model, 16)
    if not kernel.supports(wl):
        pytest.skip(f"{kernel.name} does not support {model}")
    out = kernel.run(wl)
    np.testing.assert_allclose(
        out, reference_aggregate(wl), rtol=1e-4, atol=1e-5
    )


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: k.name)
def test_kernel_on_skewed_graph(skewed_graph, kernel):
    wl = make_workload(skewed_graph, "gcn", 8)
    np.testing.assert_allclose(
        kernel.run(wl), reference_aggregate(wl), rtol=1e-4, atol=1e-5
    )


def test_three_kernel_gat_matches_fused(small_random):
    wl = make_workload(small_random, "gat", 16)
    fused = TLPGNNKernel().run(wl)
    unfused, _pipe, _parts = three_kernel_gat(wl)
    np.testing.assert_allclose(unfused, fused, rtol=1e-4, atol=1e-5)


def test_execute_end_to_end(small_random):
    wl = make_workload(small_random, "gcn", 16)
    res = TLPGNNKernel().execute(wl)
    assert res.output.shape == wl.X.shape
    assert res.timing.gpu_seconds > 0
    assert res.stats.load_requests > 0


def test_unsupported_attention_raises_or_skips(small_random):
    wl = make_workload(small_random, "gat", 8)
    assert not PushKernel().supports(wl)
    assert not EdgeCentricKernel().supports(wl)
    assert not NeighborGroupKernel().supports(wl)
    assert TLPGNNKernel().supports(wl)


@given(
    n=st.integers(2, 40),
    m=st.integers(0, 200),
    feat=st.sampled_from([8, 16, 32]),
    model=st.sampled_from(list(MODEL_NAMES)),
    seed=st.integers(0, 20),
)
@settings(max_examples=40, deadline=None)
def test_tlpgnn_matches_reference_property(n, m, feat, model, seed):
    g = erdos_renyi(n, m, seed=seed)
    wl = make_workload(g, model, feat, seed=seed)
    np.testing.assert_allclose(
        TLPGNNKernel().run(wl), reference_aggregate(wl), rtol=1e-4, atol=1e-5
    )


@given(n=st.integers(2, 30), m=st.integers(1, 120), seed=st.integers(0, 10))
@settings(max_examples=30, deadline=None)
def test_scatter_kernels_match_property(n, m, seed):
    g = power_law(n, m, seed=seed)
    wl = make_workload(g, "gin", 8, seed=seed)
    ref = reference_aggregate(wl)
    np.testing.assert_allclose(PushKernel().run(wl), ref, rtol=1e-4, atol=1e-5)
    np.testing.assert_allclose(
        EdgeCentricKernel().run(wl), ref, rtol=1e-4, atol=1e-5
    )
