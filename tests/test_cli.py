"""CLI: argument handling and command output."""

import io

import pytest

from repro.cli import build_parser, main

ARGS = ["--max-edges", "60000", "--seed", "7"]


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_choice_ok_until_run(self):
        args = build_parser().parse_args(["run", "--dataset", "CR"])
        assert args.dataset == "CR"

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])


class TestCommands:
    def test_datasets(self):
        code, out = run_cli(*ARGS, "datasets")
        assert code == 0
        assert "Reddit" in out and "Citeseer" in out

    def test_run_summary(self):
        code, out = run_cli(*ARGS, "run", "--system", "TLPGNN", "--model", "gcn",
                            "--dataset", "CR")
        assert code == 0
        assert "kernel launches    : 1" in out

    def test_run_dash_cell(self):
        code, out = run_cli(*ARGS, "run", "--system", "GNNAdvisor",
                            "--model", "gat", "--dataset", "CR")
        assert code == 1
        assert "dash" in out

    def test_compare_ranks(self):
        code, out = run_cli(*ARGS, "compare", "--model", "gcn", "--dataset", "CR")
        assert code == 0
        assert "fastest" in out
        assert out.index("TLPGNN") < out.index("DGL")  # TLPGNN ranked first

    def test_compare_shows_dashes(self):
        code, out = run_cli(*ARGS, "compare", "--model", "gat", "--dataset", "CR")
        assert code == 0
        assert "GNNAdvisor" in out and "dash" in out

    def test_experiment_table4(self):
        code, out = run_cli(*ARGS, "experiment", "table4")
        assert code == 0
        assert "Table 4" in out

    def test_experiment_table2_forces_feat128(self):
        code, out = run_cli(*ARGS, "experiment", "table2")
        assert code == 0
        assert "feat 128" in out

    def test_roofline(self):
        code, out = run_cli(*ARGS, "roofline", "--system", "TLPGNN",
                            "--model", "gcn", "--dataset", "CR")
        assert code == 0
        assert "-bound" in out

    def test_roofline_multi_kernel(self):
        code, out = run_cli(*ARGS, "roofline", "--system", "DGL",
                            "--model", "gcn", "--dataset", "CR")
        assert code == 0
        assert out.count("-bound") == 6  # one line per DGL kernel


class TestValidateAndReport:
    def test_validate_selected(self):
        code, out = run_cli(*ARGS, "validate", "--only", "table5-dashes")
        assert code == 0
        assert "[PASS] table5-dashes" in out
        assert "1/1 claims hold" in out

    def test_report_to_file(self, tmp_path):
        target = tmp_path / "report.txt"
        code, out = run_cli(*ARGS, "report", "--out", str(target))
        assert code == 0
        text = target.read_text()
        for exp in ("Table 1", "Table 5", "Figure 12"):
            assert exp in text
