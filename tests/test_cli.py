"""CLI: argument handling and command output."""

import io
import json

import pytest

from repro.cli import build_parser, main

ARGS = ["--max-edges", "60000", "--seed", "7"]


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_choice_ok_until_run(self):
        args = build_parser().parse_args(["run", "--dataset", "CR"])
        assert args.dataset == "CR"

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])


class TestCommands:
    def test_datasets(self):
        code, out = run_cli(*ARGS, "datasets")
        assert code == 0
        assert "Reddit" in out and "Citeseer" in out

    def test_run_summary(self):
        code, out = run_cli(*ARGS, "run", "--system", "TLPGNN", "--model", "gcn",
                            "--dataset", "CR")
        assert code == 0
        assert "kernel launches    : 1" in out

    def test_run_dash_cell(self):
        code, out = run_cli(*ARGS, "run", "--system", "GNNAdvisor",
                            "--model", "gat", "--dataset", "CR")
        assert code == 1
        assert "dash" in out

    def test_compare_ranks(self):
        code, out = run_cli(*ARGS, "compare", "--model", "gcn", "--dataset", "CR")
        assert code == 0
        assert "fastest" in out
        assert out.index("TLPGNN") < out.index("DGL")  # TLPGNN ranked first

    def test_compare_shows_dashes(self):
        code, out = run_cli(*ARGS, "compare", "--model", "gat", "--dataset", "CR")
        assert code == 0
        assert "GNNAdvisor" in out and "dash" in out

    def test_compare_all_dash_exits_nonzero(self, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "run_system", lambda *a, **kw: None)
        code, out = run_cli(*ARGS, "compare", "--model", "gcn", "--dataset", "CR")
        assert code == 1
        for name in ("TLPGNN", "DGL", "FeatGraph", "GNNAdvisor"):
            assert name in out
        assert out.count("dash") == 4
        assert "fastest" not in out

    def test_experiment_table4(self):
        code, out = run_cli(*ARGS, "experiment", "table4")
        assert code == 0
        assert "Table 4" in out

    def test_experiment_table2_forces_feat128(self):
        code, out = run_cli(*ARGS, "experiment", "table2")
        assert code == 0
        assert "feat 128" in out

    def test_roofline(self):
        code, out = run_cli(*ARGS, "roofline", "--system", "TLPGNN",
                            "--model", "gcn", "--dataset", "CR")
        assert code == 0
        assert "-bound" in out

    def test_roofline_multi_kernel(self):
        code, out = run_cli(*ARGS, "roofline", "--system", "DGL",
                            "--model", "gcn", "--dataset", "CR")
        assert code == 0
        assert out.count("-bound") == 6  # one line per DGL kernel


class TestTraceAndDiff:
    def test_trace_writes_loadable_chrome_json(self, tmp_path):
        target = tmp_path / "trace.json"
        code, out = run_cli(*ARGS, "trace", "--system", "TLPGNN",
                            "--model", "gcn", "--dataset", "CR",
                            "--out", str(target))
        assert code == 0
        assert f"wrote {target}" in out
        trace = json.loads(target.read_text())
        assert trace["traceEvents"]
        assert trace["otherData"]["system"] == "TLPGNN"

    def test_trace_dash_cell_exits_nonzero(self, tmp_path):
        target = tmp_path / "trace.json"
        code, out = run_cli(*ARGS, "trace", "--system", "GNNAdvisor",
                            "--model", "gat", "--dataset", "CR",
                            "--out", str(target))
        assert code == 1
        assert not target.exists()
        assert "dash" in out

    def test_trace_tracer_uninstalled_afterwards(self, tmp_path):
        from repro.obs import get_tracer

        run_cli(*ARGS, "trace", "--out", str(tmp_path / "t.json"))
        assert get_tracer() is None

    def _archive_two(self, tmp_path):
        archive_dir = tmp_path / "archive"
        for _ in range(2):
            code, _ = run_cli(*ARGS, "run", "--system", "TLPGNN",
                              "--model", "gcn", "--dataset", "CR",
                              "--archive", str(archive_dir))
            assert code == 0
        runs = sorted(archive_dir.glob("*.json"))
        assert len(runs) == 2
        return runs

    def test_run_archives_profile(self, tmp_path):
        baseline, candidate = self._archive_two(tmp_path)
        entry = json.loads(baseline.read_text())
        assert entry["config"]["system"] == "TLPGNN"
        assert entry["metrics"]["kernel_launches"] == 1

    def test_diff_identical_runs_pass(self, tmp_path):
        baseline, candidate = self._archive_two(tmp_path)
        code, out = run_cli("diff", str(baseline), str(candidate))
        assert code == 0
        assert "PASS" in out

    def test_diff_flags_perturbed_counter(self, tmp_path):
        baseline, candidate = self._archive_two(tmp_path)
        entry = json.loads(candidate.read_text())
        entry["metrics"]["mem_atomic_store_bytes"] += 4096
        candidate.write_text(json.dumps(entry))
        code, out = run_cli("diff", str(baseline), str(candidate))
        assert code == 1
        assert "mem_atomic_store_bytes" in out
        assert "FAIL" in out

    def test_diff_bad_file_exits_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code, out = run_cli("diff", str(bad), str(bad))
        assert code == 2
        assert "error:" in out


class TestServe:
    def test_smoke_self_check(self):
        code, out = run_cli(*ARGS, "serve", "--smoke")
        assert code == 0
        assert "serve smoke: OK" in out
        assert "admission" in out and "latency ms" in out

    def test_serve_report_fields(self):
        code, out = run_cli(*ARGS, "serve", "--system", "DGL",
                            "--dataset", "CR", "--requests", "40")
        assert code == 0
        assert "serve DGL/gcn/" in out
        assert "arrived=40" in out
        assert "offline" in out  # run_system reference line

    def test_serve_metrics_out(self, tmp_path):
        target = tmp_path / "metrics.jsonl"
        code, out = run_cli(*ARGS, "serve", "--smoke",
                            "--metrics-out", str(target))
        assert code == 0
        records = [json.loads(line) for line in target.read_text().splitlines()]
        names = {r["name"] for r in records}
        assert "serve_latency_p99_ms" in names
        assert "serve_requests_shed" in names

    def test_serve_unsupported_cell(self):
        code, out = run_cli(*ARGS, "serve", "--system", "GNNAdvisor",
                            "--model", "gat", "--requests", "10")
        assert code == 1
        assert "cannot serve" in out

    def test_serve_registry_uninstalled_afterwards(self):
        from repro.obs.metrics import get_registry

        run_cli(*ARGS, "serve", "--smoke")
        assert get_registry() is None


class TestServeTracing:
    def test_tree_prints_slowest_span_trees(self):
        code, out = run_cli(*ARGS, "serve", "--smoke", "--tree", "2")
        assert code == 0
        assert out.count("request #") >= 2
        for stage in ("queue", "batch", "launch", "kernel"):
            assert stage in out

    def test_trace_writes_loadable_chrome_json(self, tmp_path):
        target = tmp_path / "reqtrace.json"
        code, out = run_cli(*ARGS, "serve", "--smoke",
                            "--trace", str(target))
        assert code == 0
        assert f"wrote {target}" in out
        events = json.loads(target.read_text())["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert any(e["name"].startswith("request #") for e in events)

    def test_collector_uninstalled_afterwards(self, tmp_path):
        from repro.obs.reqtrace import get_request_collector

        run_cli(*ARGS, "serve", "--smoke", "--tree", "1")
        assert get_request_collector() is None

    def test_serve_slo_summary_and_metrics(self, tmp_path):
        target = tmp_path / "metrics.jsonl"
        code, out = run_cli(*ARGS, "serve", "--smoke", "--slo-ms", "0.5",
                            "--metrics-out", str(target))
        assert code == 0
        assert "slo" in out and "burn-rate alert" in out
        records = [json.loads(line) for line in target.read_text().splitlines()]
        names = {r["name"] for r in records}
        assert "slo_budget_used" in names
        assert "serve_latency_ms" in names
        # satellite 2: both plan-cache counters materialize, even at zero
        assert "plan_cache_hit" in names and "plan_cache_miss" in names
        hist = next(r for r in records if r["name"] == "serve_latency_ms")
        exemplars = [
            b["exemplar"] for b in hist["buckets"] if b["exemplar"]
        ]
        assert exemplars  # request ids survive into the JSONL dump


class TestTopAndMetrics:
    def test_top_renders_dashboard(self):
        code, out = run_cli(*ARGS, "top", "--requests", "60", "--load", "0.4")
        assert code == 0
        assert "SLO" in out
        assert "budget" in out
        assert "#" in out or "-" in out  # the budget bar

    def test_top_overload_fires(self):
        code, out = run_cli(*ARGS, "top", "--requests", "80", "--load", "4.0",
                            "--queue-depth", "8")
        assert code == 0
        assert "FIRING" in out

    def test_top_unsupported_cell(self):
        code, out = run_cli(*ARGS, "top", "--system", "GNNAdvisor",
                            "--model", "gat")
        assert code == 1
        assert "cannot serve" in out

    def test_metrics_self_contained_exposition(self):
        code, out = run_cli(*ARGS, "metrics", "--requests", "32")
        assert code == 0
        assert "# TYPE serve_latency_ms histogram" in out
        assert "serve_latency_ms_bucket" in out
        assert "plan_cache_hit" in out and "plan_cache_miss" in out
        assert 'rid="' in out  # exemplars rendered

    def test_metrics_from_jsonl(self, tmp_path):
        target = tmp_path / "metrics.jsonl"
        code, _ = run_cli(*ARGS, "serve", "--smoke",
                          "--metrics-out", str(target))
        assert code == 0
        code, out = run_cli("metrics", "--from-jsonl", str(target))
        assert code == 0
        assert "serve_requests_completed" in out
        assert "# TYPE" in out

    def test_metrics_from_missing_file_exits_two(self, tmp_path):
        code, out = run_cli("metrics", "--from-jsonl",
                            str(tmp_path / "nope.jsonl"))
        assert code == 2
        assert "error:" in out


class TestRegress:
    def test_record_then_compare_passes(self, tmp_path):
        code, out = run_cli(*ARGS, "regress", "--probe", "serving",
                            "--store-dir", str(tmp_path), "--record")
        assert code == 0
        store = tmp_path / "BENCH_serving.json"
        assert store.exists()
        doc = json.loads(store.read_text())
        assert len(doc["points"]) == 1
        assert doc["points"][0]["metrics"]["completed"] > 0
        code, out = run_cli(*ARGS, "regress", "--probe", "serving",
                            "--store-dir", str(tmp_path))
        assert code == 0
        assert "PASS" in out

    def test_injected_slowdown_exits_nonzero(self, tmp_path):
        run_cli(*ARGS, "regress", "--probe", "serving",
                "--store-dir", str(tmp_path), "--record")
        store = tmp_path / "BENCH_serving.json"
        doc = json.loads(store.read_text())
        # shrink the recorded latencies: HEAD now looks 2x slower
        for key in ("p50_ms", "p95_ms", "p99_ms", "mean_ms"):
            doc["points"][0]["metrics"][key] *= 0.5
        store.write_text(json.dumps(doc))
        code, out = run_cli(*ARGS, "regress", "--probe", "serving",
                            "--store-dir", str(tmp_path))
        assert code == 1
        assert "FAIL" in out and "p99_ms" in out

    def test_no_matching_baseline_is_informative_not_fatal(self, tmp_path):
        code, out = run_cli(*ARGS, "regress", "--probe", "serving",
                            "--store-dir", str(tmp_path))
        assert code == 0
        assert "no trajectory point" in out

    def test_config_fingerprint_scopes_the_comparison(self, tmp_path):
        run_cli(*ARGS, "regress", "--probe", "serving",
                "--store-dir", str(tmp_path), "--record")
        # a different scale cap fingerprints differently: no baseline
        code, out = run_cli("--max-edges", "50000", "--seed", "7", "regress",
                            "--probe", "serving", "--store-dir", str(tmp_path))
        assert code == 0
        assert "no trajectory point" in out


class TestValidateAndReport:
    def test_validate_selected(self):
        code, out = run_cli(*ARGS, "validate", "--only", "table5-dashes")
        assert code == 0
        assert "[PASS] table5-dashes" in out
        assert "1/1 claims hold" in out

    def test_report_to_file(self, tmp_path):
        target = tmp_path / "report.txt"
        code, out = run_cli(*ARGS, "report", "--out", str(target))
        assert code == 0
        text = target.read_text()
        for exp in ("Table 1", "Table 5", "Figure 12"):
            assert exp in text
