"""Roofline classification, graph serialization, and GCN training."""

import numpy as np
import pytest

from repro.gpusim import V100, machine_balance, roofline
from repro.graph import (
    erdos_renyi,
    load_dataset,
    load_dataset_file,
    load_graph,
    save_dataset,
    save_graph,
)
from repro.kernels import EdgeCentricKernel, TLPGNNKernel
from repro.models import GCNClassifier, cross_entropy, normalized_adjacency

from .conftest import make_workload


class TestRoofline:
    def test_machine_balance_positive(self):
        mb = machine_balance(V100)
        assert 0.1 < mb < 100

    def test_bandwidth_bound_kernel(self, small_random):
        wl = make_workload(small_random, "gcn", 128)
        res = TLPGNNKernel(assignment="hardware").execute(wl)
        pt = roofline(res.stats, res.timing, V100)
        assert pt.bound_by in ("bandwidth", "latency", "compute")
        assert 0.0 < pt.ceiling_utilization <= 1.0
        assert "bound" in pt.describe()

    def test_atomic_kernel_classified(self, skewed_graph):
        wl = make_workload(skewed_graph, "gin", 64)
        res = EdgeCentricKernel().execute(wl)
        pt = roofline(res.stats, res.timing, V100)
        # scatter with per-edge atomics: the atomic ceiling should at least
        # register as a large term
        assert pt.bound_by in ("atomic", "bandwidth", "latency")

    def test_intensity_decreases_with_feat(self, small_random):
        lo = make_workload(small_random, "gin", 8)
        hi = make_workload(small_random, "gin", 128)
        k = TLPGNNKernel(assignment="hardware")
        r_lo, r_hi = k.execute(lo), k.execute(hi)
        ai_lo = roofline(r_lo.stats, r_lo.timing, V100).arithmetic_intensity
        ai_hi = roofline(r_hi.stats, r_hi.timing, V100).arithmetic_intensity
        assert ai_hi < ai_lo  # big rows move more bytes per instruction


class TestGraphIO:
    def test_graph_roundtrip(self, tmp_path, small_random):
        p = save_graph(small_random, tmp_path / "g")
        assert p.suffix == ".npz"
        back = load_graph(p)
        assert np.array_equal(back.indptr, small_random.indptr)
        assert np.array_equal(back.indices, small_random.indices)
        assert back.name == small_random.name

    def test_dataset_roundtrip(self, tmp_path):
        ds = load_dataset("PD")
        p = save_dataset(ds, tmp_path / "pd.npz")
        back = load_dataset_file(p)
        assert back.abbr == "PD"
        assert back.scale == ds.scale
        assert np.array_equal(back.graph.indices, ds.graph.indices)
        assert back.full_num_vertices == ds.full_num_vertices

    def test_load_validates(self, tmp_path, small_random):
        # a corrupted file (indices mismatch) must fail CSR validation
        import json

        p = save_graph(small_random, tmp_path / "g")
        data = dict(np.load(p))
        data["indices"] = data["indices"][:-1]
        np.savez(p, **data)
        with pytest.raises(ValueError):
            load_graph(p)


def _community_task(rng, n=120, classes=3):
    """Synthetic node classification: label-correlated features + edges."""
    labels = rng.integers(0, classes, size=n)
    # features: class mean + noise
    means = rng.standard_normal((classes, 8)) * 2
    X = (means[labels] + rng.standard_normal((n, 8))).astype(np.float32)
    # homophilous edges: mostly within class
    src, dst = [], []
    for _ in range(n * 8):
        u = int(rng.integers(0, n))
        same = np.flatnonzero(labels == labels[u])
        v = int(rng.choice(same)) if rng.random() < 0.8 else int(rng.integers(0, n))
        if u != v:
            src.append(v)
            dst.append(u)
    from repro.graph import from_edge_list

    return from_edge_list(src, dst, n), X, labels


class TestTraining:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.standard_normal((5, 3))
        labels = np.array([0, 1, 2, 1, 0])
        loss, grad = cross_entropy(logits, labels)
        # manual
        from repro.models import functional as F

        probs = F.softmax(logits, axis=1)
        manual = -np.mean(np.log(probs[np.arange(5), labels]))
        assert loss == pytest.approx(manual, rel=1e-9)
        assert grad.shape == logits.shape

    def test_mask_validated(self, rng):
        logits = rng.standard_normal((3, 2))
        with pytest.raises(ValueError, match="mask"):
            cross_entropy(logits, np.zeros(3, int), np.zeros(3, bool))

    def test_gradient_check(self, rng):
        """Analytic gradients match numerical differentiation."""
        g, X, labels = _community_task(rng, n=30)
        model = GCNClassifier.init(8, 6, 3, rng)

        def loss_at(w1, w2):
            m = GCNClassifier(w1=w1, w2=w2)
            logits = m.forward(g, X)
            return cross_entropy(logits, labels)[0]

        logits = model.forward(g, X)
        _, grad = cross_entropy(logits, labels)
        dW1, dW2 = model.gradients(grad)

        eps = 1e-6
        for W, dW, which in ((model.w1, dW1, 1), (model.w2, dW2, 2)):
            idx = (1, 2)
            Wp, Wm = W.copy(), W.copy()
            Wp[idx] += eps
            Wm[idx] -= eps
            num = (
                (loss_at(Wp, model.w2) - loss_at(Wm, model.w2)) / (2 * eps)
                if which == 1
                else (loss_at(model.w1, Wp) - loss_at(model.w1, Wm)) / (2 * eps)
            )
            assert dW[idx] == pytest.approx(num, rel=1e-4, abs=1e-7)

    def test_loss_decreases(self, rng):
        g, X, labels = _community_task(rng)
        model = GCNClassifier.init(8, 16, 3, rng)
        losses = model.train(g, X, labels, epochs=60, lr=0.2)
        assert losses[-1] < losses[0] * 0.6

    def test_learns_communities(self, rng):
        g, X, labels = _community_task(rng)
        model = GCNClassifier.init(8, 16, 3, rng)
        model.train(g, X, labels, epochs=120, lr=0.2)
        assert model.accuracy(g, X, labels) > 0.85

    def test_train_mask_generalization(self, rng):
        g, X, labels = _community_task(rng)
        mask = rng.random(g.num_vertices) < 0.5
        model = GCNClassifier.init(8, 16, 3, rng)
        model.train(g, X, labels, train_mask=mask, epochs=120, lr=0.2)
        assert model.accuracy(g, X, labels, mask=~mask) > 0.7

    def test_gradients_require_forward(self, rng):
        model = GCNClassifier.init(4, 4, 2, rng)
        with pytest.raises(RuntimeError):
            model.gradients(np.zeros((3, 2)))

    def test_normalized_adjacency_rows(self, tiny_graph):
        A = normalized_adjacency(tiny_graph)
        assert A.shape == (4, 4)
        # diagonal carries the self-loop term
        assert np.all(A.diagonal() > 0)

    def test_weight_decay_shrinks(self, rng):
        g, X, labels = _community_task(rng, n=40)
        a = GCNClassifier.init(8, 8, 3, rng)
        b = GCNClassifier(w1=a.w1.copy(), w2=a.w2.copy())
        a.train(g, X, labels, epochs=30, lr=0.1)
        b.train(g, X, labels, epochs=30, lr=0.1, weight_decay=0.5)
        assert np.linalg.norm(b.w1) < np.linalg.norm(a.w1)


class TestNetworkXBridge:
    def test_roundtrip_directed(self, small_random):
        import networkx as nx

        from repro.graph import from_networkx, to_networkx

        nxg = to_networkx(small_random)
        back = from_networkx(nxg)
        # parallel edges collapse in NetworkX; compare unique edge sets
        import numpy as np

        ours = set(zip(*map(lambda a: a.tolist(), small_random.edge_list()), strict=True))
        theirs = set(zip(*map(lambda a: a.tolist(), back.edge_list()), strict=True))
        assert ours == theirs

    def test_undirected_symmetrized(self):
        import networkx as nx

        from repro.graph import from_networkx

        g = from_networkx(nx.path_graph(4))
        assert g.num_edges == 6  # 3 undirected edges, both directions
        assert 1 in g.neighbors(0) and 0 in g.neighbors(1)

    def test_karate_runs_through_kernel(self):
        import networkx as nx
        import numpy as np

        from repro.graph import from_networkx
        from repro.kernels import TLPGNNKernel
        from repro.models import build_conv, reference_aggregate

        g = from_networkx(nx.karate_club_graph())
        X = np.random.default_rng(0).standard_normal((34, 8), dtype=np.float32)
        wl = build_conv("gcn", g, X)
        np.testing.assert_allclose(
            TLPGNNKernel().run(wl), reference_aggregate(wl), rtol=1e-4, atol=1e-5
        )
