"""Micro-simulator request primitives and address map layout."""

import numpy as np
import pytest

from repro.gpusim import AddressMap, MicroSim


class TestAddressMap:
    def test_layout_ordered_and_aligned(self):
        m = AddressMap.create(10, 40, 16)
        assert m.feat_base == 0
        bases = [m.out_base, m.indptr_base, m.indices_base, m.edge_val_base]
        assert bases == sorted(bases)
        for b in bases:
            assert b % 128 == 0

    def test_no_overlap(self):
        m = AddressMap.create(10, 40, 16)
        assert m.out_base >= 10 * 16 * 4
        assert m.indices_base >= m.indptr_base + 4 * 11
        assert m.edge_val_base >= m.indices_base + 4 * 40

    def test_addr_helpers(self):
        m = AddressMap.create(10, 40, 16)
        assert m.feat_addr(0, 0) == 0
        assert m.feat_addr(1, 0) == 64
        assert m.feat_addr(2, 3) == 2 * 64 + 12
        assert m.indptr_addr(3) == m.indptr_base + 12
        assert m.indices_addr(5) == m.indices_base + 20

    def test_vectorized_addrs(self):
        m = AddressMap.create(10, 40, 16)
        a = m.feat_addr(np.array([0, 1]), 2)
        assert a.tolist() == [8, 72]


class TestMicroSim:
    def test_load_counts(self):
        s = MicroSim()
        s.warp_load(np.arange(32) * 4)
        assert s.load_requests == 1
        assert s.load_sectors == 4

    def test_store_counts(self):
        s = MicroSim()
        s.warp_store(np.arange(16) * 4)
        assert s.store_requests == 1
        assert s.store_sectors == 2

    def test_atomic_counts_ops(self):
        s = MicroSim()
        s.warp_atomic(np.arange(8) * 128)
        assert s.atomic_requests == 1
        assert s.atomic_ops == 8
        assert s.atomic_sectors == 8

    def test_issue_and_diverge(self):
        s = MicroSim()
        s.issue(3)
        s.diverge(5)
        assert s.instructions == 3
        assert s.divergent_lanes == 5

    def test_lane_limit(self):
        s = MicroSim()
        with pytest.raises(ValueError, match="32 lane"):
            s.warp_load(np.arange(40))

    def test_totals_and_spr(self):
        s = MicroSim()
        s.warp_load(np.arange(32) * 4)  # 4 sectors
        s.warp_load(np.arange(32) * 128)  # 32 sectors
        assert s.total_requests == 2
        assert s.sectors_per_request == pytest.approx(18.0)

    def test_l1_hit_tracking(self):
        s = MicroSim().with_l1()
        # lane-level sector accesses: request 1 = 4 misses + 28 intra-warp
        # hits, request 2 = 32 hits
        s.warp_load(np.arange(32) * 4)
        s.warp_load(np.arange(32) * 4)
        assert s.l1_hit_rate == pytest.approx(60 / 64)
        # DRAM-equivalent sector counters unaffected by the cache
        assert s.load_sectors == 8

    def test_no_l1_by_default(self):
        s = MicroSim()
        assert s.l1_hit_rate == 0.0
