"""Sector math and cache model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    SectorCache,
    cached_dram_sectors,
    contiguous_warp_sectors,
    scattered_rows_sectors,
    sectors_for_addresses,
    sectors_for_span,
    strided_column_sectors,
)


class TestSpans:
    def test_aligned_span(self):
        assert sectors_for_span(0, 32) == 1
        assert sectors_for_span(0, 33) == 2
        assert sectors_for_span(0, 128) == 4

    def test_unaligned_span_crosses_boundary(self):
        assert sectors_for_span(30, 4) == 2
        assert sectors_for_span(31, 1) == 1

    def test_zero_length(self):
        assert sectors_for_span(100, 0) == 0

    def test_vectorized(self):
        out = sectors_for_span(np.array([0, 30, 64]), np.array([32, 4, 0]))
        assert out.tolist() == [1, 2, 0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sectors_for_span(0, -1)


class TestAddresses:
    def test_single_sector_broadcast(self):
        assert sectors_for_addresses(np.array([4]), 4) == 1

    def test_coalesced_32_lanes(self):
        addrs = np.arange(32) * 4
        assert sectors_for_addresses(addrs, 4) == 4  # 128B = 4 sectors

    def test_fully_scattered(self):
        addrs = np.arange(32) * 128
        assert sectors_for_addresses(addrs, 4) == 32

    def test_duplicates_collapse(self):
        assert sectors_for_addresses(np.array([0, 0, 4, 8]), 4) == 1

    def test_item_spanning_boundary(self):
        assert sectors_for_addresses(np.array([30]), 8) == 2

    def test_empty(self):
        assert sectors_for_addresses(np.array([]), 4) == 0


class TestPatternFormulas:
    def test_contiguous_full_warp(self):
        assert contiguous_warp_sectors(32, 4) == 4

    def test_contiguous_half_warp(self):
        assert contiguous_warp_sectors(16, 4) == 2

    def test_contiguous_small(self):
        assert contiguous_warp_sectors(4, 4) == 1
        assert contiguous_warp_sectors(0, 4) == 0

    def test_scattered_wide_rows(self):
        # rows >= one sector apart: every lane its own sector
        assert scattered_rows_sectors(32, 128) == 32
        assert scattered_rows_sectors(16, 64) == 16

    def test_scattered_narrow_rows_share(self):
        # rows of 16B: two lanes per sector
        assert scattered_rows_sectors(32, 16) == 16

    def test_strided(self):
        assert strided_column_sectors(32, 128) == 32
        assert strided_column_sectors(32, 16) == 16
        assert strided_column_sectors(0, 4) == 0

    def test_formula_matches_exact_counting(self):
        # scattered formula == exact unique-sector count for row gathers
        for lanes in (1, 7, 16, 32):
            addrs = np.arange(lanes) * 256
            assert scattered_rows_sectors(lanes, 256) == sectors_for_addresses(
                addrs, 4
            )


class TestCachedDram:
    def test_all_unique_passthrough(self):
        assert cached_dram_sectors(100, 100, 6 << 20) == 100

    def test_small_working_set_mostly_hits(self):
        # 10 unique sectors (320B) reused 1000x with a big L2
        out = cached_dram_sectors(1000, 10, 6 << 20)
        assert out <= 10 + 1000 * 0.06

    def test_giant_working_set_mostly_misses(self):
        out = cached_dram_sectors(10_000_000, 5_000_000, 6 << 20)
        assert out > 0.9 * 10_000_000

    def test_zero(self):
        assert cached_dram_sectors(0, 10, 1 << 20) == 0
        assert cached_dram_sectors(10, 0, 1 << 20) == 0

    def test_unique_clamped_to_touches(self):
        assert cached_dram_sectors(5, 100, 1 << 20) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cached_dram_sectors(-1, 0, 1 << 20)

    def test_monotone_in_l2(self):
        small = cached_dram_sectors(100_000, 50_000, 64 << 10)
        big = cached_dram_sectors(100_000, 50_000, 32 << 20)
        assert big <= small


class TestSectorCache:
    def test_hit_after_miss(self):
        c = SectorCache(1024)
        assert not c.access(5)
        assert c.access(5)
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction(self):
        c = SectorCache(2 * 32)  # two sectors
        c.access(1)
        c.access(2)
        c.access(3)  # evicts 1
        assert not c.access(1)

    def test_lru_touch_refreshes(self):
        c = SectorCache(2 * 32)
        c.access(1)
        c.access(2)
        c.access(1)  # refresh 1
        c.access(3)  # evicts 2
        assert c.access(1)

    def test_access_bytes_span(self):
        c = SectorCache(1024)
        hits, misses = c.access_bytes(0, 64)
        assert (hits, misses) == (0, 2)
        hits, misses = c.access_bytes(0, 64)
        assert (hits, misses) == (2, 0)

    def test_hit_rate(self):
        c = SectorCache(1024)
        assert c.hit_rate == 0.0
        c.access(0)
        c.access(0)
        assert c.hit_rate == 0.5
        c.reset_counters()
        assert c.hit_rate == 0.0

    def test_minimum_capacity(self):
        with pytest.raises(ValueError):
            SectorCache(16)


@given(start=st.integers(0, 10_000), nbytes=st.integers(0, 4096))
@settings(max_examples=60, deadline=None)
def test_span_equals_exhaustive(start, nbytes):
    """Span formula == counting distinct sectors of every byte."""
    expected = len({b // 32 for b in range(start, start + nbytes)})
    assert sectors_for_span(start, nbytes) == expected
