"""ProfileReport: as_dict/summary consistency, edge cases, byte formatting."""

import numpy as np
import pytest

from repro.gpusim import V100
from repro.gpusim.costmodel import PipelineTiming, estimate_kernel
from repro.gpusim.kernel import KernelStats, LaunchConfig, PipelineStats
from repro.gpusim.profiler import ProfileReport, _fmt_bytes
from repro.gpusim.scheduler import ScheduleResult


def _make_report(*, load_sectors=1000, load_requests=250, atomic_sectors=0,
                 extras=None):
    stats = KernelStats(
        name="k",
        launch=LaunchConfig(num_blocks=10, threads_per_block=128),
        load_sectors=load_sectors,
        load_requests=load_requests,
        atomic_sectors=atomic_sectors,
        instructions=4000,
        warp_cycles=np.full(40, 100.0),
    )
    sched = ScheduleResult(4000.0, 4000.0, 0.0, 10, "hardware")
    timing = estimate_kernel(stats, sched, V100)
    pipe = PipelineStats(name="p")
    pipe.add(stats)
    pt = PipelineTiming(name="p", kernels=[timing])
    return ProfileReport(
        system="TLPGNN", model="gcn", dataset="CR", timing=pt, stats=pipe,
        extras=extras or {},
    )


class TestAsDictSummaryConsistency:
    def test_as_dict_matches_properties(self):
        r = _make_report()
        d = r.as_dict()
        for key in (
            "runtime_ms", "gpu_time_ms", "launch_overhead_ms", "preprocess_ms",
            "kernel_launches", "mem_load_bytes", "mem_atomic_store_bytes",
            "mem_total_bytes", "global_mem_usage_bytes", "sm_utilization",
            "achieved_occupancy", "stall_long_scoreboard", "sectors_per_request",
        ):
            assert d[key] == getattr(r, key), key
        assert d["system"] == r.system
        assert d["model"] == r.model
        assert d["dataset"] == r.dataset

    def test_summary_renders_every_as_dict_headline(self):
        r = _make_report()
        d = r.as_dict()
        s = r.summary()
        assert f"{r.system} / {r.model} / {r.dataset}" in s
        assert f"{d['runtime_ms']:.3f} ms" in s
        assert f"{d['kernel_launches']}" in s
        assert f"{d['sectors_per_request']:.2f}" in s
        assert f"{100 * d['sm_utilization']:.1f}%" in s
        assert f"{100 * d['achieved_occupancy']:.1f}%" in s

    def test_summary_hides_zero_preprocess(self):
        assert "pre-processing" not in _make_report().summary()

    def test_extras_flow_into_as_dict(self):
        r = _make_report(extras={"custom_metric": 42})
        assert r.as_dict()["custom_metric"] == 42

    def test_as_dict_is_json_serializable(self):
        import json

        json.dumps(_make_report().as_dict())


class TestSectorsPerRequest:
    def test_ratio(self):
        r = _make_report(load_sectors=1000, load_requests=250)
        assert r.sectors_per_request == pytest.approx(4.0)

    def test_zero_requests_returns_zero(self):
        r = _make_report(load_sectors=0, load_requests=0)
        assert r.sectors_per_request == 0.0
        # and the summary still renders without dividing by zero
        assert "sector/request     : 0.00" in r.summary()


class TestFmtBytes:
    @pytest.mark.parametrize(
        "n, expected",
        [
            (0, "0.00 B"),
            (1023, "1023.00 B"),
            (1024, "1.00 KB"),
            (1024**2 - 1, "1024.00 KB"),
            (1024**2, "1.00 MB"),
            (1024**3, "1.00 GB"),
            (1024**4, "1.00 TB"),
            # beyond TB stays in TB rather than inventing units
            (1024**5, f"{1024.0:.2f} TB"),
            (-5, "-5.00 B"),
            (-2 * 1024**2, "-2.00 MB"),
        ],
    )
    def test_boundaries(self, n, expected):
        assert _fmt_bytes(n) == expected
