"""Scheduling models: greedy makespan, hardware/static/software policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    V100,
    LaunchConfig,
    greedy_makespan,
    hardware_schedule,
    software_pool_schedule,
    static_schedule,
)


class TestGreedyMakespan:
    def test_empty(self):
        assert greedy_makespan(np.array([]), 4) == 0.0

    def test_fewer_tasks_than_workers(self):
        assert greedy_makespan(np.array([5.0, 3.0]), 8) == 5.0

    def test_exact_simple(self):
        # 4 tasks of 1 on 2 workers -> 2
        assert greedy_makespan(np.ones(4), 2, exact=True) == 2.0

    def test_single_worker_sums(self):
        costs = np.array([1.0, 2.0, 3.0])
        assert greedy_makespan(costs, 1, exact=True) == 6.0

    def test_graham_bounds(self):
        rng = np.random.default_rng(0)
        costs = rng.exponential(10.0, size=500)
        for workers in (3, 16, 64):
            span = greedy_makespan(costs, workers, exact=True)
            lower = max(costs.sum() / workers, costs.max())
            assert lower <= span <= costs.sum() / workers + costs.max() + 1e-9

    def test_bound_tracks_simulation(self):
        rng = np.random.default_rng(1)
        costs = rng.pareto(2.0, size=5000) * 10 + 1
        exact = greedy_makespan(costs, 100, exact=True)
        approx = greedy_makespan(costs, 100, exact=False)
        lower = max(costs.sum() / 100, costs.max())
        # the bound sits between the trivial lower bound and ~1.5x the sim
        assert lower - 1e-9 <= approx <= 1.5 * exact
        assert approx == pytest.approx(exact, rel=0.4)

    def test_per_task_overhead(self):
        base = greedy_makespan(np.ones(100), 10, exact=True)
        over = greedy_makespan(np.ones(100), 10, per_task_overhead=1.0, exact=True)
        assert over == pytest.approx(base * 2)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            greedy_makespan(np.ones(3), 0)


class TestHardwareSchedule:
    def _launch(self, wpb=4):
        return LaunchConfig(num_blocks=1, threads_per_block=wpb * 32)

    def test_empty(self):
        r = hardware_schedule(np.array([]), self._launch(), V100)
        assert r.makespan_cycles == 0.0
        assert r.num_units == 0

    def test_block_retires_on_slowest_warp(self):
        # one block of 4 warps: makespan at least the max warp + overhead
        cycles = np.array([10.0, 20.0, 30.0, 1000.0])
        r = hardware_schedule(cycles, self._launch(4), V100)
        assert r.makespan_cycles >= 1000.0

    def test_busy_cycles_sum(self):
        rng = np.random.default_rng(2)
        cycles = rng.uniform(1, 100, size=1000)
        r = hardware_schedule(cycles, self._launch(), V100)
        assert r.busy_warp_cycles == pytest.approx(cycles.sum())

    def test_fewer_warps_per_block_balances_better(self):
        rng = np.random.default_rng(3)
        cycles = rng.pareto(1.5, size=20_000) * 100 + 10
        r1 = hardware_schedule(
            cycles, LaunchConfig(num_blocks=1, threads_per_block=32), V100
        )
        r16 = hardware_schedule(
            cycles, LaunchConfig(num_blocks=1, threads_per_block=512), V100
        )
        # intra-block imbalance (max-of-16) should cost more overall
        assert r16.makespan_cycles >= r1.makespan_cycles * 0.9

    def test_scheduling_overhead_grows_with_blocks(self):
        cycles = np.ones(50_000)
        r1 = hardware_schedule(
            cycles, LaunchConfig(num_blocks=1, threads_per_block=32), V100
        )
        assert r1.overhead_cycles > 0
        assert r1.policy == "hardware"

    def test_slot_share_stretches_makespan(self):
        # a co-resident kernel on half the block slots takes ~2x as long
        # once the device is saturated with uniform blocks
        cycles = np.ones(200_000) * 50.0
        launch = LaunchConfig(num_blocks=1, threads_per_block=32)
        full = hardware_schedule(cycles, launch, V100)
        half = hardware_schedule(cycles, launch, V100, slot_share=0.5)
        assert half.makespan_cycles == pytest.approx(
            2.0 * full.makespan_cycles, rel=0.05
        )

    def test_slot_share_validated(self):
        launch = LaunchConfig(num_blocks=1, threads_per_block=32)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="slot_share"):
                hardware_schedule(np.ones(4), launch, V100, slot_share=bad)


class TestStaticSchedule:
    def test_static_never_beats_dynamic_on_skew(self):
        rng = np.random.default_rng(4)
        cycles = rng.pareto(1.2, size=30_000) * 100 + 5
        launch = LaunchConfig(num_blocks=1, threads_per_block=512)
        dyn = hardware_schedule(cycles, launch, V100)
        stat = static_schedule(cycles, launch, V100)
        assert stat.makespan_cycles >= dyn.makespan_cycles * 0.8

    def test_uniform_work_static_is_fine(self):
        # with uniform work static assignment loses nothing and skips the
        # per-block scheduling overhead entirely
        cycles = np.full(30_000, 10.0)
        launch = LaunchConfig(num_blocks=1, threads_per_block=128)
        dyn = hardware_schedule(cycles, launch, V100)
        stat = static_schedule(cycles, launch, V100)
        assert stat.makespan_cycles <= dyn.makespan_cycles
        assert stat.overhead_cycles == 0.0

    def test_empty(self):
        launch = LaunchConfig(num_blocks=1, threads_per_block=128)
        assert static_schedule(np.array([]), launch, V100).makespan_cycles == 0.0


class TestSoftwarePool:
    def test_empty(self):
        r = software_pool_schedule(np.array([]), V100)
        assert r.makespan_cycles == 0.0

    def test_policy_label(self):
        r = software_pool_schedule(np.ones(100), V100, step=8)
        assert r.policy == "software"
        assert r.num_units == -(-100 // 8)

    def test_step_validation(self):
        with pytest.raises(ValueError):
            software_pool_schedule(np.ones(10), V100, step=0)

    def test_resident_warps_scaling(self):
        cycles = np.ones(100_000) * 10
        slow = software_pool_schedule(cycles, V100, resident_warps=16)
        fast = software_pool_schedule(cycles, V100, resident_warps=5120)
        assert slow.makespan_cycles > 50 * fast.makespan_cycles

    def test_beats_hardware_on_many_small_blocks(self):
        # huge vertex count, uniform small work: hardware pays per-block
        # scheduling; the pool pays one atomic per chunk
        cycles = np.full(200_000, 5.0)
        hw, _ = _hw(cycles)
        sw = software_pool_schedule(cycles, V100, step=16)
        assert sw.makespan_cycles < hw.makespan_cycles


def _hw(cycles, wpb=4):
    launch = LaunchConfig(
        num_blocks=max(1, -(-len(cycles) // wpb)), threads_per_block=wpb * 32
    )
    return hardware_schedule(cycles, launch, V100), launch


@given(
    n=st.integers(1, 400),
    workers=st.integers(1, 64),
    seed=st.integers(0, 10),
)
@settings(max_examples=40, deadline=None)
def test_greedy_makespan_bounds_property(n, workers, seed):
    rng = np.random.default_rng(seed)
    costs = rng.uniform(0.1, 50.0, size=n)
    span = greedy_makespan(costs, workers, exact=True)
    assert span >= max(costs.max(), costs.sum() / workers) - 1e-9
    assert span <= costs.sum() / workers + costs.max() + 1e-9
