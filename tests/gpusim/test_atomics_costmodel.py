"""Atomic cost model, kernel cost estimation, pipeline aggregation."""

import numpy as np
import pytest

from repro.gpusim import (
    V100,
    KernelStats,
    LaunchConfig,
    PipelineStats,
    atomic_serialization_cycles,
    estimate_kernel,
    estimate_pipeline,
    expected_warp_conflicts,
    scatter_collision_rate,
)
from repro.gpusim.scheduler import ScheduleResult


class TestCollisionRate:
    def test_empty(self):
        assert scatter_collision_rate(np.array([])) == 0.0
        assert scatter_collision_rate(np.zeros(5)) == 0.0

    def test_bounded(self):
        rng = np.random.default_rng(0)
        deg = rng.integers(0, 1000, size=100)
        r = scatter_collision_rate(deg)
        assert 0.0 <= r <= 1.0

    def test_hubs_collide_more(self):
        uniform = np.full(100, 4)
        hubby = np.zeros(100, dtype=int)
        hubby[0] = 400
        assert scatter_collision_rate(hubby) > scatter_collision_rate(uniform)

    def test_degree_one_rarely_collides(self):
        assert scatter_collision_rate(np.ones(1000)) < 0.05


class TestWarpConflicts:
    def test_single_target_serializes_fully(self):
        assert expected_warp_conflicts(32, 1) == 32.0

    def test_many_targets_no_conflict(self):
        assert expected_warp_conflicts(32, 10_000_000) == pytest.approx(1.0, rel=0.01)

    def test_one_lane(self):
        assert expected_warp_conflicts(1, 5) == 1.0


class TestSerializationCycles:
    def test_zero_ops(self):
        assert atomic_serialization_cycles(0, 0.5, V100) == 0.0

    def test_linear_in_ops(self):
        a = atomic_serialization_cycles(100, 0.0, V100)
        b = atomic_serialization_cycles(200, 0.0, V100)
        assert b == pytest.approx(2 * a)

    def test_contention_multiplies(self):
        base = atomic_serialization_cycles(100, 0.0, V100)
        hot = atomic_serialization_cycles(100, 1.0, V100)
        assert hot == pytest.approx(base * V100.atomic_contention_factor)

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            atomic_serialization_cycles(10, 1.5, V100)


def _stats(**kw) -> KernelStats:
    defaults = dict(
        name="k",
        launch=LaunchConfig(num_blocks=100, threads_per_block=128),
        load_sectors=1000,
        load_requests=250,
        instructions=5000,
        warp_cycles=np.full(400, 50.0),
    )
    defaults.update(kw)
    return KernelStats(**defaults)


def _sched(makespan=1e6, busy=1e6) -> ScheduleResult:
    return ScheduleResult(
        makespan_cycles=makespan,
        busy_warp_cycles=busy,
        overhead_cycles=0.0,
        num_units=100,
        policy="hardware",
    )


class TestEstimateKernel:
    def test_roofline_max(self):
        # tiny compute, huge traffic -> bandwidth-bound
        s = _stats(load_sectors=10**9)
        t = estimate_kernel(s, _sched(makespan=1000.0, busy=1000.0), V100)
        assert t.gpu_seconds == pytest.approx(t.bandwidth_seconds)
        assert t.bandwidth_seconds > t.sm_seconds

    def test_sm_bound(self):
        s = _stats(load_sectors=10)
        t = estimate_kernel(s, _sched(makespan=1e9, busy=1e6), V100)
        assert t.gpu_seconds == pytest.approx(t.sm_seconds)

    def test_atomic_bound(self):
        s = _stats(
            atomic_sectors=100,
            atomic_requests=10,
            atomic_ops=10**9,
            atomic_collision_rate=0.5,
        )
        t = estimate_kernel(s, _sched(makespan=1000.0, busy=1000.0), V100)
        assert t.gpu_seconds == pytest.approx(t.atomic_seconds)
        assert t.atomic_seconds > 0

    def test_atomics_hurt(self):
        clean = estimate_kernel(_stats(), _sched(1000.0, 1000.0), V100)
        dirty = estimate_kernel(
            _stats(atomic_ops=10**8, atomic_requests=1, atomic_sectors=1),
            _sched(1000.0, 1000.0),
            V100,
        )
        assert dirty.gpu_seconds > clean.gpu_seconds

    def test_launch_overhead_constant(self):
        t = estimate_kernel(_stats(), _sched(), V100)
        assert t.launch_seconds == V100.kernel_launch_seconds
        assert t.runtime_seconds == pytest.approx(
            t.gpu_seconds + t.launch_seconds
        )

    def test_stall_grows_with_bw_pressure(self):
        light = estimate_kernel(
            _stats(load_sectors=10), _sched(1e7, 1e6), V100
        )
        heavy = estimate_kernel(
            _stats(load_sectors=10**9), _sched(1e3, 1e3), V100
        )
        assert heavy.stall_scoreboard_cycles > light.stall_scoreboard_cycles

    def test_stall_grows_with_uncoalescing(self):
        co = estimate_kernel(
            _stats(load_sectors=10**8, load_requests=25 * 10**6),
            _sched(1e3, 1e3),
            V100,
        )
        unco = estimate_kernel(
            _stats(load_sectors=10**8, load_requests=4 * 10**6),
            _sched(1e3, 1e3),
            V100,
        )
        assert unco.sectors_per_request > co.sectors_per_request
        assert unco.stall_scoreboard_cycles > co.stall_scoreboard_cycles

    def test_validation_runs(self):
        bad = _stats(load_sectors=-1)
        with pytest.raises(ValueError):
            estimate_kernel(bad, _sched(), V100)


class TestPipeline:
    def test_aggregation(self):
        p = PipelineStats(name="p")
        s1, s2 = _stats(name="a", workspace_bytes=100), _stats(name="b")
        p.add(s1)
        p.add(s2)
        t1 = estimate_kernel(s1, _sched(), V100)
        t2 = estimate_kernel(s2, _sched(), V100)
        pt = estimate_pipeline(p, [t1, t2], V100)
        assert pt.num_kernels == 2
        assert pt.gpu_seconds == pytest.approx(t1.gpu_seconds + t2.gpu_seconds)
        assert pt.runtime_seconds > pt.gpu_seconds  # launches included
        assert p.total_workspace_bytes == 100

    def test_framework_dispatch_adds_per_kernel(self):
        p = PipelineStats(name="p")
        s = _stats()
        p.add(s)
        t = estimate_kernel(s, _sched(), V100)
        plain = estimate_pipeline(p, [t], V100)
        fw = estimate_pipeline(p, [t], V100, framework_dispatch=True)
        assert fw.launch_seconds == pytest.approx(
            plain.launch_seconds + V100.framework_dispatch_seconds
        )

    def test_preprocess_in_total_not_runtime(self):
        p = PipelineStats(name="p", preprocess_seconds=1.0)
        s = _stats()
        p.add(s)
        t = estimate_kernel(s, _sched(), V100)
        pt = estimate_pipeline(p, [t], V100)
        assert pt.total_seconds == pytest.approx(pt.runtime_seconds + 1.0)

    def test_weighted_metric_averages(self):
        p = PipelineStats(name="p")
        s = _stats()
        p.add(s)
        t = estimate_kernel(s, _sched(), V100)
        pt = estimate_pipeline(p, [t], V100)
        assert pt.avg_sm_utilization == pytest.approx(t.sm_utilization)
        assert pt.avg_occupancy == pytest.approx(t.occupancy)


class TestKernelStats:
    def test_sector_per_request_prefers_l1(self):
        s = _stats(l1_load_sectors=500)
        assert s.sectors_per_request == pytest.approx(500 / 250)

    def test_sector_per_request_falls_back_to_dram(self):
        s = _stats()
        assert s.sectors_per_request == pytest.approx(1000 / 250)

    def test_bytes_helpers(self):
        s = _stats()
        assert s.load_bytes == 1000 * 32
        assert s.total_bytes == s.load_bytes

    def test_validation_catches_orphan_sectors(self):
        s = _stats(store_sectors=5)
        with pytest.raises(ValueError, match="store sectors"):
            s.validate()
