"""GPUSpec limits, device scaling, and occupancy computation."""

import numpy as np
import pytest

from repro.gpusim import (
    V100,
    GPUSpec,
    LaunchConfig,
    achieved_occupancy,
    scaled_spec,
    theoretical_occupancy,
)


class TestSpec:
    def test_v100_shape(self):
        assert V100.num_sms == 80
        assert V100.max_resident_warps == 80 * 64
        assert V100.sectors_per_line == 4

    def test_overrides(self):
        s = V100.with_overrides(num_sms=40)
        assert s.num_sms == 40
        assert V100.num_sms == 80  # original untouched

    def test_occupancy_limit_by_warps(self):
        # 1024-thread blocks = 32 warps -> 2 blocks fill 64 warp slots
        assert V100.occupancy_limit_blocks(1024, 32) == 2

    def test_occupancy_limit_by_registers(self):
        # 128 regs/thread, 512 threads = 65536 regs = exactly one block
        assert V100.occupancy_limit_blocks(512, 128) == 1

    def test_occupancy_limit_by_smem(self):
        assert V100.occupancy_limit_blocks(64, 16, smem_per_block=48 * 1024) == 2

    def test_bad_threads(self):
        with pytest.raises(ValueError):
            V100.occupancy_limit_blocks(0, 32)
        with pytest.raises(ValueError):
            V100.occupancy_limit_blocks(2048, 32)


class TestScaledSpec:
    def test_identity_at_full_scale(self):
        assert scaled_spec(V100, 1.0) is V100

    def test_throughput_scales(self):
        s = scaled_spec(V100, 0.25)
        assert s.num_sms == 20
        assert s.mem_bandwidth_bytes_per_s == pytest.approx(900e9 * 0.25)
        assert s.l2_bytes == int(V100.l2_bytes * 0.25)

    def test_host_costs_absolute(self):
        s = scaled_spec(V100, 0.125)
        assert s.kernel_launch_seconds == V100.kernel_launch_seconds
        assert s.framework_dispatch_seconds == V100.framework_dispatch_seconds

    def test_floors(self):
        s = scaled_spec(V100, 1 / 1024)
        assert s.num_sms >= 2
        assert s.l2_bytes >= 64 * 1024
        assert s.atomic_ops_per_cycle >= 2.0

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_spec(V100, 0.0)
        with pytest.raises(ValueError):
            scaled_spec(V100, 2.0)


class TestLaunchConfig:
    def test_warp_counts(self):
        lc = LaunchConfig(num_blocks=10, threads_per_block=128)
        assert lc.warps_per_block() == 4
        assert lc.num_warps() == 40
        assert lc.num_threads == 1280

    def test_validation(self):
        with pytest.raises(ValueError):
            LaunchConfig(num_blocks=0, threads_per_block=32)
        with pytest.raises(ValueError):
            LaunchConfig(num_blocks=1, threads_per_block=0)
        with pytest.raises(ValueError):
            LaunchConfig(num_blocks=1, threads_per_block=32, regs_per_thread=300)


class TestTheoreticalOccupancy:
    def test_full_occupancy(self):
        lc = LaunchConfig(num_blocks=10_000, threads_per_block=256, regs_per_thread=32)
        rep = theoretical_occupancy(lc, V100)
        assert rep.theoretical == 1.0

    def test_register_limited(self):
        lc = LaunchConfig(num_blocks=10_000, threads_per_block=256, regs_per_thread=128)
        rep = theoretical_occupancy(lc, V100)
        assert rep.limited_by == "registers"
        assert rep.theoretical < 1.0

    def test_small_grid_limited(self):
        lc = LaunchConfig(num_blocks=80, threads_per_block=64)
        rep = theoretical_occupancy(lc, V100)
        assert rep.limited_by == "grid_size"
        assert rep.warps_per_sm == 2

    def test_smem_limited(self):
        lc = LaunchConfig(
            num_blocks=10_000, threads_per_block=64, shared_mem_per_block=96 * 1024
        )
        rep = theoretical_occupancy(lc, V100)
        assert rep.limited_by == "shared_memory"
        assert rep.blocks_per_sm == 1


class TestAchievedOccupancy:
    def test_perfect_balance(self):
        # 5120 warps busy the whole makespan -> occupancy 1
        w = np.full(V100.max_resident_warps, 100.0)
        assert achieved_occupancy(w, 100.0, V100) == pytest.approx(1.0)

    def test_half_busy(self):
        w = np.full(V100.max_resident_warps, 50.0)
        assert achieved_occupancy(w, 100.0, V100) == pytest.approx(0.5)

    def test_imbalance_lowers_occupancy(self):
        balanced = np.full(1000, 10.0)
        skewed = np.zeros(1000)
        skewed[0] = 10_000.0
        occ_b = achieved_occupancy(balanced, 10.0 + 1, V100)
        occ_s = achieved_occupancy(skewed, 10_000.0, V100)
        assert occ_s < occ_b

    def test_zero_makespan(self):
        assert achieved_occupancy(np.array([1.0]), 0.0, V100) == 0.0

    def test_resident_limit_caps(self):
        w = np.full(V100.max_resident_warps, 100.0)
        assert achieved_occupancy(w, 100.0, V100, resident_limit=0.25) == 0.25
