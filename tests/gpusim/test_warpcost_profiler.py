"""warp_cycles assembly and the Nsight-style profile report."""

import numpy as np
import pytest

from repro.gpusim import V100, warp_cycles
from repro.gpusim.costmodel import PipelineTiming, estimate_kernel
from repro.gpusim.kernel import KernelStats, LaunchConfig, PipelineStats
from repro.gpusim.profiler import ProfileReport
from repro.gpusim.scheduler import ScheduleResult


class TestWarpCycles:
    def test_broadcasts(self):
        out = warp_cycles(V100, instructions=np.arange(4), requests=1.0, sectors=2.0)
        assert out.shape == (4,)
        assert np.all(np.diff(out) > 0)

    def test_components_additive(self):
        a = warp_cycles(V100, instructions=10, requests=0, sectors=0)
        b = warp_cycles(V100, instructions=0, requests=10, sectors=0)
        c = warp_cycles(V100, instructions=0, requests=0, sectors=10)
        both = warp_cycles(V100, instructions=10, requests=10, sectors=10)
        assert both[0] == pytest.approx(a[0] + b[0] + c[0])

    def test_constants_applied(self):
        out = warp_cycles(V100, instructions=1, requests=1, sectors=1)
        expected = (
            V100.cycles_per_instr + V100.cycles_per_request + V100.cycles_per_sector
        )
        assert out[0] == pytest.approx(expected)

    def test_atomic_term(self):
        clean = warp_cycles(V100, instructions=1, requests=1, sectors=1)
        dirty = warp_cycles(
            V100, instructions=1, requests=1, sectors=1, atomic_ops=2,
            collision_rate=0.0,
        )
        assert dirty[0] == pytest.approx(clean[0] + 2 * V100.cycles_per_atomic)

    def test_scalar_returns_1d(self):
        assert warp_cycles(V100, instructions=1, requests=1, sectors=1).ndim == 1


def _report():
    launch = LaunchConfig(num_blocks=10, threads_per_block=128)
    stats = KernelStats(
        name="k",
        launch=launch,
        load_sectors=1000,
        load_requests=250,
        instructions=4000,
        warp_cycles=np.full(40, 100.0),
        workspace_bytes=64,
    )
    sched = ScheduleResult(4000.0, 4000.0, 0.0, 10, "hardware")
    timing = estimate_kernel(stats, sched, V100)
    pipe = PipelineStats(name="p", preprocess_seconds=0.001)
    pipe.add(stats)
    pt = PipelineTiming(name="p", kernels=[timing], preprocess_seconds=0.001)
    return ProfileReport(
        system="S", model="gcn", dataset="CR", timing=pt, stats=pipe
    )


class TestProfileReport:
    def test_metric_names(self):
        r = _report()
        d = r.as_dict()
        for key in (
            "runtime_ms",
            "gpu_time_ms",
            "kernel_launches",
            "mem_load_bytes",
            "mem_atomic_store_bytes",
            "sm_utilization",
            "achieved_occupancy",
            "stall_long_scoreboard",
            "sectors_per_request",
        ):
            assert key in d

    def test_identities(self):
        r = _report()
        assert r.kernel_launches == 1
        assert r.mem_load_bytes == 1000 * 32
        assert r.mem_atomic_store_bytes == 0
        assert r.global_mem_usage_bytes == 64
        assert r.runtime_ms == pytest.approx(
            r.gpu_time_ms + r.launch_overhead_ms
        )
        assert r.total_ms == pytest.approx(r.runtime_ms + r.preprocess_ms)
        assert r.preprocess_ms == pytest.approx(1.0)

    def test_summary_mentions_preprocess(self):
        r = _report()
        s = r.summary()
        assert "pre-processing" in s
        assert "S / gcn / CR" in s

    def test_sectors_per_request(self):
        r = _report()
        assert r.sectors_per_request == pytest.approx(4.0)
