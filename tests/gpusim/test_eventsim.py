"""Event-driven scheduler sim, and its agreement with the analytical model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import V100, LaunchConfig, hardware_schedule, software_pool_schedule
from repro.gpusim.eventsim import (
    simulate_hardware_scheduler,
    simulate_task_pool_warps,
)


def _launch(wpb=4):
    return LaunchConfig(num_blocks=1, threads_per_block=wpb * 32)


class TestHardwareEventSim:
    def test_empty(self):
        r = simulate_hardware_scheduler(np.array([]), _launch(), V100)
        assert r.makespan_cycles == 0.0

    def test_single_block(self):
        cycles = np.array([10.0, 30.0, 20.0, 5.0])
        r = simulate_hardware_scheduler(cycles, _launch(4), V100)
        assert r.makespan_cycles == pytest.approx(30.0 + V100.block_schedule_cycles)
        assert r.num_blocks == 1

    def test_blocks_spread_over_sms(self):
        cycles = np.full(80 * 4, 100.0)  # exactly one block per SM
        r = simulate_hardware_scheduler(cycles, _launch(4), V100)
        assert np.count_nonzero(r.sm_busy_cycles) == 80
        assert r.sm_imbalance == pytest.approx(1.0)

    def test_occupancy_bounds(self):
        rng = np.random.default_rng(0)
        r = simulate_hardware_scheduler(
            rng.uniform(10, 100, size=50_000), _launch(), V100
        )
        assert 0.0 < r.avg_occupancy <= 1.0

    def test_matches_analytical_on_uniform(self):
        cycles = np.full(40_000, 50.0)
        launch = _launch(4)
        sim = simulate_hardware_scheduler(cycles, launch, V100)
        model = hardware_schedule(cycles, launch, V100)
        assert model.makespan_cycles == pytest.approx(
            sim.makespan_cycles, rel=0.25
        )

    def test_matches_analytical_on_skew(self):
        rng = np.random.default_rng(1)
        cycles = rng.pareto(1.8, size=30_000) * 50 + 10
        launch = _launch(4)
        sim = simulate_hardware_scheduler(cycles, launch, V100)
        model = hardware_schedule(cycles, launch, V100)
        assert model.makespan_cycles == pytest.approx(
            sim.makespan_cycles, rel=0.35
        )

    def test_slot_share_stretches_makespan(self):
        cycles = np.full(200_000, 50.0)
        launch = _launch(1)
        full = simulate_hardware_scheduler(cycles, launch, V100)
        half = simulate_hardware_scheduler(cycles, launch, V100, slot_share=0.5)
        assert half.makespan_cycles == pytest.approx(
            2.0 * full.makespan_cycles, rel=0.05
        )

    def test_slot_share_validated(self):
        with pytest.raises(ValueError, match="slot_share"):
            simulate_hardware_scheduler(
                np.ones(4), _launch(), V100, slot_share=0.0
            )


class TestPoolEventSim:
    def test_empty(self):
        r = simulate_task_pool_warps(np.array([]), V100)
        assert r.makespan_cycles == 0.0

    def test_matches_analytical(self):
        rng = np.random.default_rng(2)
        cycles = rng.uniform(5, 50, size=60_000)
        sim = simulate_task_pool_warps(cycles, V100, step=8)
        model = software_pool_schedule(cycles, V100, step=8)
        assert model.makespan_cycles == pytest.approx(
            sim.makespan_cycles, rel=0.3
        )

    def test_pool_occupancy_beats_big_blocks_on_skew(self):
        rng = np.random.default_rng(3)
        cycles = rng.pareto(1.3, size=40_000) * 100 + 10
        pool = simulate_task_pool_warps(cycles, V100, step=4)
        blocks = simulate_hardware_scheduler(cycles, _launch(16), V100)
        assert pool.avg_occupancy > blocks.avg_occupancy

    def test_resident_warps_limits_throughput(self):
        cycles = np.full(20_000, 10.0)
        few = simulate_task_pool_warps(cycles, V100, resident_warps=64)
        many = simulate_task_pool_warps(cycles, V100, resident_warps=5120)
        assert few.makespan_cycles > 10 * many.makespan_cycles


@given(
    n=st.integers(1, 3000),
    wpb=st.sampled_from([1, 2, 4, 8]),
    seed=st.integers(0, 5),
)
@settings(max_examples=25, deadline=None)
def test_eventsim_brackets_analytical(n, wpb, seed):
    """The greedy analytical makespan stays within a constant factor of the
    executable ground truth across random workloads."""
    rng = np.random.default_rng(seed)
    cycles = rng.uniform(1, 200, size=n)
    launch = LaunchConfig(num_blocks=1, threads_per_block=wpb * 32)
    sim = simulate_hardware_scheduler(cycles, launch, V100)
    model = hardware_schedule(cycles, launch, V100)
    assert 0.4 * sim.makespan_cycles <= model.makespan_cycles <= 2.5 * sim.makespan_cycles
