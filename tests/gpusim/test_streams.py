"""Multi-stream concurrent-kernel simulator: fluid sharing + serialization."""

import math

import pytest

from repro.gpusim.streams import MultiStreamSimulator, StreamKernel
from repro.obs.events import EventSink, set_event_sink


def K(name="k", comp=1e-3, mem=0.0, launch=0.0, tag=None):
    return StreamKernel(
        name=name, comp_seconds=comp, mem_seconds=mem,
        launch_seconds=launch, tag=tag,
    )


class TestAloneKernel:
    def test_finishes_at_alone_seconds(self):
        sim = MultiStreamSimulator(num_streams=1)
        sim.submit(K(comp=2e-3, mem=5e-4), stream=0, at_s=0.0)
        sim.drain()
        (c,) = sim.completions
        assert c.finish_s == pytest.approx(2e-3)
        assert c.stretch == pytest.approx(1.0)

    def test_memory_bound_alone(self):
        sim = MultiStreamSimulator(num_streams=1)
        sim.submit(K(comp=1e-4, mem=3e-3), stream=0, at_s=0.0)
        sim.drain()
        assert sim.completions[0].finish_s == pytest.approx(3e-3)

    def test_launch_is_serialized_prefix(self):
        sim = MultiStreamSimulator(num_streams=1)
        sim.submit(K(comp=1e-3, launch=1e-5), stream=0, at_s=0.0)
        sim.drain()
        (c,) = sim.completions
        assert c.ready_s == pytest.approx(1e-5)
        assert c.latency_s == pytest.approx(1e-3 + 1e-5)

    def test_single_stream_pipeline_sums_exactly(self):
        # streams=1: latency of an n-kernel pipeline is sum(launch_i + gpu_i)
        # — the offline runtime_seconds identity the serve parity test uses.
        sim = MultiStreamSimulator(num_streams=1)
        kernels = [K(f"k{i}", comp=(i + 1) * 1e-4, launch=7e-6) for i in range(5)]
        for k in kernels:
            sim.submit(k, stream=0, at_s=0.0)
        sim.drain()
        expected = sum(k.launch_seconds + k.alone_seconds for k in kernels)
        assert sim.completions[-1].finish_s == pytest.approx(expected, rel=1e-12)


class TestSharing:
    def test_same_resource_halves_rate(self):
        sim = MultiStreamSimulator(num_streams=2)
        sim.submit(K("a", comp=1e-3), stream=0, at_s=0.0)
        sim.submit(K("b", comp=1e-3), stream=1, at_s=0.0)
        sim.drain()
        assert sim.makespan_s == pytest.approx(2e-3)
        for c in sim.completions:
            assert c.stretch == pytest.approx(2.0)

    def test_complementary_kernels_overlap(self):
        # compute-bound + memory-bound barely contend: makespan well under
        # the serialized sum and close to the max.
        sim = MultiStreamSimulator(num_streams=2)
        sim.submit(K("comp", comp=1e-3, mem=0.0), stream=0, at_s=0.0)
        sim.submit(K("mem", comp=0.0, mem=1e-3), stream=1, at_s=0.0)
        sim.drain()
        assert sim.makespan_s == pytest.approx(1e-3)

    def test_two_streams_beat_one_for_mixed_load(self):
        pair = [K("c", comp=1e-3), K("m", comp=0.0, mem=1e-3)]
        serial = MultiStreamSimulator(num_streams=1)
        for k in pair:
            serial.submit(k, stream=0, at_s=0.0)
        serial.drain()
        concurrent = MultiStreamSimulator(num_streams=2)
        for s, k in enumerate(pair):
            concurrent.submit(k, stream=s, at_s=0.0)
        concurrent.drain()
        assert concurrent.makespan_s < serial.makespan_s

    def test_avg_concurrency(self):
        sim = MultiStreamSimulator(num_streams=2)
        sim.submit(K("a", comp=1e-3), stream=0, at_s=0.0)
        sim.submit(K("b", comp=1e-3), stream=1, at_s=0.0)
        sim.drain()
        assert sim.avg_concurrency() == pytest.approx(2.0)


class TestOrderingAndCapacity:
    def test_fifo_within_stream(self):
        sim = MultiStreamSimulator(num_streams=1)
        sim.submit(K("first", comp=1e-3), stream=0, at_s=0.0)
        sim.submit(K("second", comp=1e-4), stream=0, at_s=0.0)
        sim.drain()
        names = [c.kernel.name for c in sim.completions]
        assert names == ["first", "second"]
        first, second = sim.completions
        assert second.start_s >= first.finish_s

    def test_host_serializes_simultaneous_launches(self):
        sim = MultiStreamSimulator(num_streams=3)
        for s in range(3):
            sim.submit(K(f"k{s}", comp=1e-3, launch=1e-5), stream=s, at_s=0.0)
        sim.drain()
        readies = sorted(c.ready_s for c in sim.completions)
        assert readies == pytest.approx([1e-5, 2e-5, 3e-5])

    def test_max_concurrent_caps_residency(self):
        sim = MultiStreamSimulator(num_streams=4, max_concurrent=1)
        for s in range(4):
            sim.submit(K(f"k{s}", comp=1e-3), stream=s, at_s=0.0)
        sim.drain()
        assert sim.makespan_s == pytest.approx(4e-3)
        for c in sim.completions:
            assert c.stretch == pytest.approx(1.0)

    def test_late_arrival_idles_device(self):
        sim = MultiStreamSimulator(num_streams=1)
        sim.submit(K(comp=1e-3), stream=0, at_s=5e-3)
        sim.drain()
        (c,) = sim.completions
        assert c.start_s == pytest.approx(5e-3)
        assert c.finish_s == pytest.approx(6e-3)

    def test_advance_is_incremental(self):
        sim = MultiStreamSimulator(num_streams=1)
        sim.submit(K(comp=1e-3), stream=0, at_s=0.0)
        sim.advance_to(5e-4)
        assert sim.completions == []
        assert sim.busy
        sim.advance_to(2e-3)
        assert len(sim.take_completions()) == 1
        assert sim.take_completions() == []
        assert not sim.busy

    def test_pending_work_tracks_backlog(self):
        sim = MultiStreamSimulator(num_streams=2)
        sim.submit(K(comp=1e-3, launch=1e-5), stream=0, at_s=0.0)
        assert sim.pending_work_s(0) == pytest.approx(1e-3 + 1e-5)
        assert sim.pending_work_s(1) == 0.0
        sim.drain()
        assert sim.pending_work_s(0) == 0.0


class TestValidation:
    def test_bad_stream(self):
        sim = MultiStreamSimulator(num_streams=1)
        with pytest.raises(ValueError, match="out of range"):
            sim.submit(K(), stream=1, at_s=0.0)

    def test_submission_in_past(self):
        sim = MultiStreamSimulator(num_streams=1)
        sim.advance_to(1.0)
        with pytest.raises(ValueError, match="past"):
            sim.submit(K(), stream=0, at_s=0.5)

    def test_per_stream_time_order(self):
        sim = MultiStreamSimulator(num_streams=1)
        sim.submit(K(), stream=0, at_s=1e-3)
        with pytest.raises(ValueError, match="time-ordered"):
            sim.submit(K(), stream=0, at_s=5e-4)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            StreamKernel(name="bad", comp_seconds=-1.0, mem_seconds=0.0)

    def test_advance_into_past_rejected(self):
        sim = MultiStreamSimulator(num_streams=1)
        sim.advance_to(1.0)
        with pytest.raises(ValueError, match="past"):
            sim.advance_to(0.5)

    def test_zero_streams_rejected(self):
        with pytest.raises(ValueError, match="num_streams"):
            MultiStreamSimulator(num_streams=0)


class TestObservability:
    def test_completions_emit_stream_kernel_events(self):
        sink = EventSink()
        previous = set_event_sink(sink)
        try:
            sim = MultiStreamSimulator(num_streams=1)
            sim.submit(K("observed", comp=1e-3), stream=0, at_s=0.0)
            sim.drain()
        finally:
            set_event_sink(previous)
        events = sink.by_kind("stream_kernel")
        assert len(events) == 1
        assert events[0]["name"] == "observed"
        assert events[0]["finish_s"] == pytest.approx(1e-3)

    def test_tag_round_trips(self):
        sim = MultiStreamSimulator(num_streams=1)
        sim.submit(K().with_tag(("batch", 7)), stream=0, at_s=0.0)
        sim.drain()
        assert sim.completions[0].kernel.tag == ("batch", 7)

    def test_drain_handles_infinity(self):
        sim = MultiStreamSimulator(num_streams=1)
        sim.drain()  # empty drain is a no-op
        assert sim.now == 0.0
        assert math.isfinite(sim.now)
