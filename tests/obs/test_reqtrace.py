"""Request-trace collector: span trees, stage partition, Chrome export."""

import json

import pytest

from repro.obs.reqtrace import (
    BatchContext,
    KernelSpan,
    RequestContext,
    RequestTraceCollector,
    current_batch_context,
    get_request_collector,
    pop_batch_context,
    push_batch_context,
    set_request_collector,
)


def _kernel(name="spmm", stream=0, *, enqueue=1.0, launch=0.1, exec_=0.4,
            wait=0.0):
    """One KernelSpan: enqueue -> launch for ``launch`` s -> wait ``wait``
    s in the stream -> execute for ``exec_`` s."""
    ready = enqueue + launch
    start = ready + wait
    return KernelSpan(
        name=name, stream=stream, enqueue_s=enqueue, launch_start_s=enqueue,
        ready_s=ready, start_s=start, finish_s=start + exec_,
    )


def _one_request(collector, *, rid=0, arrival=0.0, enqueue=0.0,
                 dispatch=1.0, kernels=(), finish=1.5):
    ctx = RequestContext(rid, "full")
    collector.record_admit(ctx, arrival_s=arrival, enqueue_s=enqueue)
    bctx = BatchContext(bid=0, klass="full", rids=(rid,))
    collector.record_dispatch(bctx, dispatch_s=dispatch)
    for k in kernels:
        collector.record_kernel(bctx, k)
    collector.record_finish(bctx, finish_s=finish)
    return collector.get(rid)


class TestKernelSpan:
    def test_launch_and_exec_durations(self):
        k = _kernel(launch=0.1, exec_=0.4, wait=0.2)
        assert k.launch_s == pytest.approx(0.1)
        assert k.exec_s == pytest.approx(0.4)


class TestStagePartition:
    def test_stages_sum_to_latency(self):
        trace = _one_request(
            RequestTraceCollector(), kernels=[_kernel()], finish=1.5
        )
        stages = trace.stages()
        assert stages["batch"] == pytest.approx(1.0)   # enqueue 0 -> dispatch 1
        assert stages["launch"] == pytest.approx(0.1)
        assert stages["kernel"] == pytest.approx(0.4)
        assert stages["queue"] == pytest.approx(0.0)   # no waits anywhere
        assert sum(stages.values()) == pytest.approx(trace.latency_s)

    def test_queue_absorbs_stream_waits(self):
        # the kernel sat 0.2 s in the stream FIFO before starting
        trace = _one_request(
            RequestTraceCollector(),
            kernels=[_kernel(wait=0.2)], finish=1.7,
        )
        assert trace.stages()["queue"] == pytest.approx(0.2)
        assert sum(trace.stages().values()) == pytest.approx(trace.latency_s)

    def test_queue_includes_admission_delay(self):
        # arrival 0, admitted (enqueued) only at 0.3: admission processing
        trace = _one_request(
            RequestTraceCollector(),
            arrival=0.0, enqueue=0.3, dispatch=1.0,
            kernels=[_kernel()], finish=1.5,
        )
        assert trace.stages()["queue"] == pytest.approx(0.3)
        assert trace.stages()["batch"] == pytest.approx(0.7)
        assert sum(trace.stages().values()) == pytest.approx(trace.latency_s)

    def test_open_trace_has_zero_latency(self):
        collector = RequestTraceCollector()
        ctx = RequestContext(0, "full")
        collector.record_admit(ctx, arrival_s=0.0, enqueue_s=0.0)
        trace = collector.get(0)
        assert not trace.completed
        assert trace.latency_s == 0.0
        assert sum(trace.stages().values()) == 0.0

    def test_as_dict_stages_sum_to_latency_ms(self):
        trace = _one_request(
            RequestTraceCollector(), kernels=[_kernel(), _kernel("gemm")],
            finish=2.0,
        )
        d = trace.as_dict()
        assert sum(d["stages_ms"].values()) == pytest.approx(d["latency_ms"])
        assert len(d["kernels"]) == 2


class TestCollector:
    def test_batch_members_share_one_kernel_list(self):
        collector = RequestTraceCollector()
        for rid in (0, 1):
            collector.record_admit(
                RequestContext(rid, "full"), arrival_s=0.0, enqueue_s=0.0
            )
        bctx = BatchContext(bid=0, klass="full", rids=(0, 1))
        collector.record_dispatch(bctx, dispatch_s=0.5)
        collector.record_kernel(bctx, _kernel())
        collector.record_finish(bctx, finish_s=1.5)
        a, b = collector.get(0), collector.get(1)
        assert a.kernels is b.kernels  # one list per batch, not per request
        assert a.batch_size == b.batch_size == 2

    def test_kernels_recorded_before_dispatch_still_attach(self):
        # completions can be absorbed before record_dispatch runs for a
        # later batch sharing the id space — setdefault keeps them
        collector = RequestTraceCollector()
        collector.record_admit(
            RequestContext(0, "full"), arrival_s=0.0, enqueue_s=0.0
        )
        bctx = BatchContext(bid=0, klass="full", rids=(0,))
        collector.record_kernel(bctx, _kernel())
        collector.record_dispatch(bctx, dispatch_s=0.5)
        collector.record_finish(bctx, finish_s=1.5)
        assert len(collector.get(0).kernels) == 1

    def test_shed_trace(self):
        collector = RequestTraceCollector()
        collector.record_shed(RequestContext(9, "full"), at_s=0.25)
        trace = collector.get(9)
        assert trace.shed and not trace.completed
        assert collector.shed == [trace]
        assert "SHED" in trace.render_tree()

    def test_get_unknown_rid_returns_none(self):
        assert RequestTraceCollector().get(404) is None

    def test_slowest_orders_by_latency(self):
        collector = RequestTraceCollector()
        for rid, finish in [(0, 1.0), (1, 3.0), (2, 2.0)]:
            ctx = RequestContext(rid, "full")
            collector.record_admit(ctx, arrival_s=0.0, enqueue_s=0.0)
            bctx = BatchContext(bid=rid, klass="full", rids=(rid,))
            collector.record_dispatch(bctx, dispatch_s=0.5)
            collector.record_finish(bctx, finish_s=finish)
        assert [t.ctx.rid for t in collector.slowest(2)] == [1, 2]

    def test_render_tree_lists_stages_and_kernels(self):
        trace = _one_request(
            RequestTraceCollector(), kernels=[_kernel("spmm")], finish=1.5
        )
        tree = trace.render_tree()
        for label in ("request #0", "queue", "batch", "launch", "kernel",
                      "spmm"):
            assert label in tree


class TestModuleGlobals:
    def test_disabled_by_default(self):
        assert get_request_collector() is None

    def test_set_returns_previous(self):
        c = RequestTraceCollector()
        assert set_request_collector(c) is None
        assert get_request_collector() is c
        assert set_request_collector(None) is c
        assert get_request_collector() is None

    def test_batch_context_stack(self):
        assert current_batch_context() is None
        bctx = BatchContext(bid=0, klass="full", rids=(0,))
        push_batch_context(bctx)
        try:
            assert current_batch_context() is bctx
        finally:
            assert pop_batch_context() is bctx
        assert current_batch_context() is None
        assert pop_batch_context() is None  # empty stack is not an error


class TestChromeTrace:
    def _collector(self):
        collector = RequestTraceCollector()
        _one_request(collector, kernels=[_kernel()], finish=1.5)
        collector.record_shed(RequestContext(7, "full"), at_s=2.0)
        return collector

    def test_round_trips_through_json(self):
        events = self._collector().to_chrome_trace()
        assert json.loads(json.dumps(events)) == events

    def test_required_keys_and_metadata_tracks(self):
        events = self._collector().to_chrome_trace()
        for ev in events:
            for key in ("ph", "ts", "pid", "name"):
                assert key in ev
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 2  # one requests process, one streams process

    def test_request_track_carries_stage_breakdown(self):
        events = self._collector().to_chrome_trace()
        root = next(e for e in events if e["name"] == "request #0")
        assert set(root["args"]["stages_ms"]) == {
            "queue", "batch", "launch", "kernel",
        }
        assert root["dur"] == pytest.approx(1.5e6)  # simulated us

    def test_stream_track_carries_rids(self):
        events = self._collector().to_chrome_trace(stream_pid=4)
        stream_events = [
            e for e in events if e["pid"] == 4 and e["ph"] == "X"
        ]
        assert stream_events
        assert all(e["args"]["rids"] == [0] for e in stream_events)
