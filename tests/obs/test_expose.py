"""Prometheus text exposition: grammar, histograms, exemplars, JSONL."""

from repro.obs.expose import records_from_jsonl, render_prometheus
from repro.obs.metrics import MetricsRegistry


def _registry():
    r = MetricsRegistry()
    r.counter("requests_total", system="TLPGNN").inc(3)
    r.gauge("occupancy").set(0.5)
    return r


class TestScalars:
    def test_type_lines_and_values(self):
        text = render_prometheus(_registry())
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{system="TLPGNN"} 3' in text
        assert "# TYPE occupancy gauge" in text
        assert "occupancy 0.5" in text
        assert text.endswith("\n")

    def test_registry_and_snapshot_render_identically(self):
        r = _registry()
        assert render_prometheus(r) == render_prometheus(r.snapshot())

    def test_empty_source_renders_empty(self):
        assert render_prometheus([]) == ""
        assert render_prometheus(MetricsRegistry()) == ""

    def test_output_is_sorted_and_stable(self):
        a = MetricsRegistry()
        a.counter("zz").inc()
        a.counter("aa", x="2").inc()
        a.counter("aa", x="1").inc()
        text = render_prometheus(a)
        assert text.index("aa") < text.index("zz")
        assert text.index('x="1"') < text.index('x="2"')

    def test_name_and_label_sanitization(self):
        r = MetricsRegistry()
        r.counter("9bad-name", **{"label": 'va"l\\ue'}).inc()
        text = render_prometheus(r)
        assert "_bad_name" in text  # leading digit + dash sanitized
        assert '\\"' in text and "\\\\" in text  # value escaped, not name

    def test_integral_floats_render_as_ints(self):
        r = MetricsRegistry()
        r.gauge("n").set(4.0)
        assert "n 4\n" in render_prometheus(r)


class TestHistograms:
    def _histogram_registry(self):
        r = MetricsRegistry()
        h = r.histogram("latency_ms", edges=[1.0, 2.0], serve="s")
        h.observe(0.5, exemplar=1)
        h.observe(1.5, exemplar=2)
        h.observe(1.7, exemplar=3)
        h.observe(9.0, exemplar=53)
        return r

    def test_buckets_are_cumulative_with_inf(self):
        text = render_prometheus(self._histogram_registry())
        assert "# TYPE latency_ms histogram" in text
        lines = [line for line in text.splitlines() if "_bucket" in line]
        assert 'le="1"' in lines[0] and lines[0].split(" ")[1] == "1"
        assert 'le="2"' in lines[1] and lines[1].split(" ")[1] == "3"
        assert 'le="+Inf"' in lines[2] and lines[2].split(" ")[1] == "4"

    def test_sum_and_count_series(self):
        text = render_prometheus(self._histogram_registry())
        assert 'latency_ms_count{serve="s"} 4' in text
        assert 'latency_ms_sum{serve="s"} 12.7' in text

    def test_exemplars_attach_to_their_bucket(self):
        text = render_prometheus(self._histogram_registry())
        inf_line = next(
            line for line in text.splitlines() if 'le="+Inf"' in line
        )
        assert '# {rid="53"} 9' in inf_line
        mid_line = next(
            line for line in text.splitlines() if 'le="2"' in line
        )
        # the largest observation of the bucket wins the exemplar slot
        assert '# {rid="3"} 1.7' in mid_line


class TestJsonlRoundTrip:
    def test_last_snapshot_wins(self, tmp_path):
        r = _registry()
        path = tmp_path / "metrics.jsonl"
        r.dump_jsonl(path, timestamp=1.0)
        r.counter("requests_total", system="TLPGNN").inc(2)
        r.dump_jsonl(path, timestamp=2.0)
        records = records_from_jsonl(path)
        by_name = {rec["name"]: rec for rec in records}
        assert by_name["requests_total"]["value"] == 5  # not 3
        assert len(records) == 2  # one record per metric, not per dump

    def test_histogram_survives_the_round_trip(self, tmp_path):
        r = MetricsRegistry()
        r.histogram("latency_ms", edges=[1.0]).observe(3.0, exemplar=7)
        path = tmp_path / "metrics.jsonl"
        r.dump_jsonl(path, timestamp=1.0)
        text = render_prometheus(records_from_jsonl(path))
        assert "# TYPE latency_ms histogram" in text
        assert 'latency_ms_bucket{le="+Inf"} 1 # {rid="7"} 3' in text
        assert "latency_ms_sum 3" in text

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text(
            '{"name": "a", "type": "counter", "labels": {}, "value": 1}\n'
            "\n"
            '{"name": "a", "type": "counter", "labels": {}, "value": 2}\n'
        )
        records = records_from_jsonl(path)
        assert len(records) == 1 and records[0]["value"] == 2
