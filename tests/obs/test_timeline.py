"""Chrome-trace timelines + the instrumented event-sim sink."""

import json
from collections import defaultdict

import numpy as np
import pytest

from repro.bench import BenchConfig, get_dataset, make_features, run_system
from repro.frameworks import SYSTEMS
from repro.gpusim import V100, LaunchConfig, scaled_spec
from repro.gpusim.eventsim import (
    simulate_hardware_scheduler,
    simulate_task_pool_warps,
)
from repro.obs.events import EventSink, get_event_sink, set_event_sink
from repro.obs.timeline import build_timeline

CONFIG = BenchConfig(max_edges=60_000, seed=7)


def _run(system="TLPGNN", model="gcn", dataset="CR"):
    ds = get_dataset(dataset, CONFIG)
    X = make_features(ds.graph.num_vertices, CONFIG.feat_dim, seed=CONFIG.seed)
    res = run_system(SYSTEMS[system](), model, ds, CONFIG, X=X)
    return res, CONFIG.spec_for(ds)


@pytest.fixture
def sink():
    s = EventSink()
    previous = set_event_sink(s)
    yield s
    set_event_sink(previous)


class TestEventSink:
    def test_disabled_by_default(self):
        assert get_event_sink() is None

    def test_hardware_sim_emits_block_and_warp_events(self, sink):
        spec = scaled_spec(V100, 0.05)
        launch = LaunchConfig(num_blocks=8, threads_per_block=128)
        rng = np.random.default_rng(0)
        sim = simulate_hardware_scheduler(rng.uniform(50, 150, 32), launch, spec)
        blocks = sink.by_kind("block_assigned")
        assert len(blocks) == sim.num_blocks
        assert len(sink.by_kind("warp_complete")) == sim.num_blocks
        assert len(sink.by_kind("kernel_launch")) == 1
        assert {b["sm"] for b in blocks} <= set(range(spec.num_sms))
        for b in blocks:
            assert b["end_cycles"] > b["start_cycles"] >= 0.0
        assert max(b["end_cycles"] for b in blocks) == pytest.approx(
            sim.makespan_cycles
        )

    def test_task_pool_sim_emits_chunk_events(self, sink):
        spec = scaled_spec(V100, 0.05)
        rng = np.random.default_rng(1)
        sim = simulate_task_pool_warps(rng.uniform(5, 25, 128), spec, step=8)
        assert len(sink.by_kind("block_assigned")) == sim.num_blocks
        assert sink.by_kind("kernel_launch")[0]["name"] == "task_pool"

    def test_sink_caps_and_counts_drops(self):
        s = EventSink(max_events=5)
        previous = set_event_sink(s)
        try:
            spec = scaled_spec(V100, 0.05)
            launch = LaunchConfig(num_blocks=64, threads_per_block=32)
            simulate_hardware_scheduler(np.full(64, 100.0), launch, spec)
        finally:
            set_event_sink(previous)
        assert len(s) == 5
        assert s.dropped > 0

    def test_results_unchanged_by_sink(self):
        spec = scaled_spec(V100, 0.05)
        launch = LaunchConfig(num_blocks=8, threads_per_block=128)
        costs = np.random.default_rng(2).uniform(50, 150, 32)
        bare = simulate_hardware_scheduler(costs, launch, spec)
        previous = set_event_sink(EventSink())
        try:
            observed = simulate_hardware_scheduler(costs, launch, spec)
        finally:
            set_event_sink(previous)
        assert bare.makespan_cycles == observed.makespan_cycles
        assert np.array_equal(bare.sm_busy_cycles, observed.sm_busy_cycles)

    def test_scheduler_emits_summary(self, sink):
        from repro.gpusim.scheduler import hardware_schedule

        spec = scaled_spec(V100, 0.05)
        launch = LaunchConfig(num_blocks=4, threads_per_block=128)
        sched = hardware_schedule(np.full(16, 100.0), launch, spec)
        summary, = sink.by_kind("schedule")
        assert summary["policy"] == "hardware"
        assert summary["makespan_cycles"] == sched.makespan_cycles


class TestTimeline:
    @pytest.fixture(scope="class")
    def trace(self):
        res, spec = _run()
        trace = build_timeline(res, spec)
        # the exported object must round-trip through JSON
        return json.loads(json.dumps(trace)), res, spec

    def test_required_chrome_keys(self, trace):
        obj, _, _ = trace
        assert "traceEvents" in obj
        for ev in obj["traceEvents"]:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in ev, f"{ev} missing {key}"

    def test_one_track_per_simulated_sm(self, trace):
        obj, _, spec = trace
        sm_tracks = [
            ev for ev in obj["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
            and ev["args"]["name"].startswith("SM ")
        ]
        assert len(sm_tracks) == spec.num_sms
        # and every SM track actually carries block activity for this run
        with_blocks = {
            ev["tid"] for ev in obj["traceEvents"]
            if ev["ph"] == "X" and ev["tid"] > 0 and ev["pid"] == 2
        }
        assert len(with_blocks) == spec.num_sms

    def test_kernel_spans_reconcile_with_gpu_time(self, trace):
        obj, res, _ = trace
        kernel_spans = [
            ev for ev in obj["traceEvents"]
            if ev["ph"] == "X" and ev["pid"] == 2 and ev["tid"] == 0
        ]
        assert len(kernel_spans) == res.report.kernel_launches
        total_us = sum(ev["dur"] for ev in kernel_spans)
        assert total_us / 1e3 == pytest.approx(res.report.gpu_time_ms, rel=0.01)

    def test_timestamps_monotonic_per_track(self, trace):
        obj, _, _ = trace
        by_track = defaultdict(list)
        for ev in obj["traceEvents"]:
            if ev["ph"] != "M":
                by_track[(ev["pid"], ev["tid"])].append(ev["ts"])
        assert by_track, "no timed events at all"
        for track, ts in by_track.items():
            assert ts == sorted(ts), f"track {track} not monotonic"
            assert all(t >= 0 for t in ts)

    def test_block_spans_fit_inside_their_kernel(self, trace):
        obj, res, _ = trace
        end_us = res.report.gpu_time_ms * 1e3
        for ev in obj["traceEvents"]:
            if ev["ph"] == "X" and ev["pid"] == 2 and ev["tid"] > 0:
                assert ev["ts"] + ev["dur"] <= end_us * (1 + 1e-9)

    def test_multi_kernel_pipeline_dgl(self):
        res, spec = _run(system="DGL")
        trace = build_timeline(res, spec)
        kernel_spans = [
            ev for ev in trace["traceEvents"]
            if ev["ph"] == "X" and ev["pid"] == 2 and ev["tid"] == 0
        ]
        assert len(kernel_spans) == 6  # DGL GCN = 6 kernels
        total_us = sum(ev["dur"] for ev in kernel_spans)
        assert total_us / 1e3 == pytest.approx(res.report.gpu_time_ms, rel=0.01)

    def test_atomic_serialization_counter_present_for_atomic_kernels(self):
        res, spec = _run(system="DGL", model="gat")
        trace = build_timeline(res, spec)
        counters = [
            ev for ev in trace["traceEvents"] if ev["ph"] == "C"
        ]
        assert any(ev["args"]["atomic_ops"] > 0 for ev in counters)

    def test_host_tracer_track_included(self):
        from repro.obs.tracer import Tracer, set_tracer

        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            res, spec = _run()
        finally:
            set_tracer(previous)
        trace = build_timeline(res, spec, tracer=tracer)
        host = [ev for ev in trace["traceEvents"] if ev["pid"] == 1]
        assert any(ev["name"] == "bench.run_system" for ev in host)

    def test_event_cap_reported_not_silent(self):
        res, spec = _run()
        trace = build_timeline(res, spec, max_block_events_per_kernel=4)
        assert trace["otherData"]["dropped_events"] > 0
