"""Metrics registry: counters, gauges, report publishing, JSONL sink."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    get_registry,
    set_registry,
)


@pytest.fixture
def registry():
    r = MetricsRegistry()
    previous = set_registry(r)
    yield r
    set_registry(previous)


class TestPrimitives:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        c = r.counter("sectors", kernel="spmm")
        c.inc(10)
        c.inc(5)
        assert r.counter("sectors", kernel="spmm").value == 15
        assert r.counter("sectors", kernel="other").value == 0  # label-scoped

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_overwrites(self):
        r = MetricsRegistry()
        r.gauge("occupancy").set(0.5)
        r.gauge("occupancy").set(0.7)
        assert r.gauge("occupancy").value == 0.7

    def test_type_collision_raises(self):
        r = MetricsRegistry()
        r.counter("m")
        with pytest.raises(TypeError):
            r.gauge("m")

    def test_disabled_by_default(self):
        assert get_registry() is None


class TestReportPublishing:
    def _report(self):
        from repro.bench import BenchConfig, get_dataset, make_features, run_system
        from repro.frameworks import SYSTEMS

        config = BenchConfig(max_edges=60_000, seed=7)
        dataset = get_dataset("CR", config)
        X = make_features(dataset.graph.num_vertices, config.feat_dim, seed=7)
        return run_system(SYSTEMS["TLPGNN"](), "gcn", dataset, config, X=X).report

    def test_run_system_publishes_when_registry_installed(self, registry):
        report = self._report()
        names = {rec["name"] for rec in registry.snapshot()}
        # cost model published per-kernel metrics, report published profile_*
        assert "kernel_gpu_seconds" in names
        assert "profile_runtime_ms" in names
        assert "profile_mem_load_bytes" in names
        gauge = next(
            rec for rec in registry.snapshot()
            if rec["name"] == "profile_runtime_ms"
        )
        assert gauge["type"] == "gauge"
        assert gauge["labels"]["system"] == "TLPGNN"
        assert gauge["value"] == pytest.approx(report.runtime_ms)

    def test_counters_accumulate_across_runs(self, registry):
        self._report()
        first = next(
            rec for rec in registry.snapshot()
            if rec["name"] == "profile_mem_load_bytes"
        )["value"]
        self._report()
        second = next(
            rec for rec in registry.snapshot()
            if rec["name"] == "profile_mem_load_bytes"
        )["value"]
        assert second == pytest.approx(2 * first)

    def test_explicit_registry_publish(self):
        report = self._report()  # no global registry installed
        r = MetricsRegistry()
        report.publish(r, run="baseline")
        rec = next(
            rec for rec in r.snapshot() if rec["name"] == "profile_gpu_time_ms"
        )
        assert rec["labels"]["run"] == "baseline"


class TestHistogram:
    def _hist(self):
        r = MetricsRegistry()
        h = r.histogram("latency_ms", edges=[1.0, 2.0, 4.0])
        for value, rid in [(0.5, 10), (1.5, 11), (3.0, 12), (9.0, 13)]:
            h.observe(value, exemplar=rid)
        return r, h

    def test_counts_sum_and_value(self):
        _, h = self._hist()
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4 and h.value == 4.0
        assert h.sum == pytest.approx(14.0)

    def test_quantile_returns_bucket_edge(self):
        _, h = self._hist()
        assert h.quantile(0.5) == 2.0
        assert h.quantile(0.75) == 4.0
        assert h.quantile(1.0) == float("inf")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_histogram(self):
        h = MetricsRegistry().histogram("empty")
        assert h.quantile(0.99) == 0.0
        assert h.tail_exemplars(0.99) == []

    def test_largest_observation_wins_the_exemplar(self):
        r = MetricsRegistry()
        h = r.histogram("latency_ms", edges=[10.0])
        h.observe(3.0, exemplar=1)
        h.observe(7.0, exemplar=2)
        h.observe(5.0, exemplar=3)
        assert h.exemplars[0] == (2, 7.0)

    def test_tail_exemplars_cover_the_p99_buckets(self):
        _, h = self._hist()
        tail = h.tail_exemplars(0.99)
        assert (13, 9.0) in tail  # the overflow bucket's exemplar
        assert all(value >= 4.0 for _, value in tail) or tail == [(13, 9.0)]

    def test_registry_reuses_and_type_checks(self):
        r, h = self._hist()
        assert r.histogram("latency_ms") is h
        r.counter("c")
        with pytest.raises(TypeError):
            r.histogram("c")
        with pytest.raises(TypeError):
            r.gauge("latency_ms")

    def test_snapshot_and_jsonl_include_buckets(self, tmp_path):
        r, h = self._hist()
        rec = r.snapshot()[0]
        assert rec["type"] == "histogram"
        assert rec["value"] == 4.0 and rec["sum"] == pytest.approx(14.0)
        les = [b["le"] for b in rec["buckets"]]
        assert les == [1.0, 2.0, 4.0, "+Inf"]
        assert rec["buckets"][-1]["exemplar"] == {"id": 13, "value": 9.0}
        path = tmp_path / "m.jsonl"
        assert r.dump_jsonl(path, timestamp=1.0) == 1
        loaded = json.loads(path.read_text())
        assert loaded["buckets"] == json.loads(json.dumps(rec["buckets"]))

    def test_default_edges_span_us_to_seconds(self):
        from repro.obs.metrics import default_latency_edges_ms

        edges = default_latency_edges_ms()
        assert edges[0] == pytest.approx(1e-3)
        assert edges[-1] < 1e4 <= edges[-1] * 2
        assert all(b == pytest.approx(2 * a) for a, b in zip(edges, edges[1:]))


class TestJsonlSink:
    def test_dump_appends_valid_jsonl(self, tmp_path):
        r = MetricsRegistry()
        r.counter("a", k="1").inc(3)
        r.gauge("b").set(0.5)
        path = tmp_path / "metrics.jsonl"
        assert r.dump_jsonl(path, timestamp=123.0) == 2
        assert r.dump_jsonl(path, timestamp=124.0) == 2  # appends
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 4
        assert {rec["name"] for rec in lines} == {"a", "b"}
        assert all("ts" in rec and "value" in rec for rec in lines)
        assert lines[0]["ts"] == 123.0 and lines[-1]["ts"] == 124.0
