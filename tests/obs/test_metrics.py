"""Metrics registry: counters, gauges, report publishing, JSONL sink."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    get_registry,
    set_registry,
)


@pytest.fixture
def registry():
    r = MetricsRegistry()
    previous = set_registry(r)
    yield r
    set_registry(previous)


class TestPrimitives:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        c = r.counter("sectors", kernel="spmm")
        c.inc(10)
        c.inc(5)
        assert r.counter("sectors", kernel="spmm").value == 15
        assert r.counter("sectors", kernel="other").value == 0  # label-scoped

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_overwrites(self):
        r = MetricsRegistry()
        r.gauge("occupancy").set(0.5)
        r.gauge("occupancy").set(0.7)
        assert r.gauge("occupancy").value == 0.7

    def test_type_collision_raises(self):
        r = MetricsRegistry()
        r.counter("m")
        with pytest.raises(TypeError):
            r.gauge("m")

    def test_disabled_by_default(self):
        assert get_registry() is None


class TestReportPublishing:
    def _report(self):
        from repro.bench import BenchConfig, get_dataset, make_features, run_system
        from repro.frameworks import SYSTEMS

        config = BenchConfig(max_edges=60_000, seed=7)
        dataset = get_dataset("CR", config)
        X = make_features(dataset.graph.num_vertices, config.feat_dim, seed=7)
        return run_system(SYSTEMS["TLPGNN"](), "gcn", dataset, config, X=X).report

    def test_run_system_publishes_when_registry_installed(self, registry):
        report = self._report()
        names = {rec["name"] for rec in registry.snapshot()}
        # cost model published per-kernel metrics, report published profile_*
        assert "kernel_gpu_seconds" in names
        assert "profile_runtime_ms" in names
        assert "profile_mem_load_bytes" in names
        gauge = next(
            rec for rec in registry.snapshot()
            if rec["name"] == "profile_runtime_ms"
        )
        assert gauge["type"] == "gauge"
        assert gauge["labels"]["system"] == "TLPGNN"
        assert gauge["value"] == pytest.approx(report.runtime_ms)

    def test_counters_accumulate_across_runs(self, registry):
        self._report()
        first = next(
            rec for rec in registry.snapshot()
            if rec["name"] == "profile_mem_load_bytes"
        )["value"]
        self._report()
        second = next(
            rec for rec in registry.snapshot()
            if rec["name"] == "profile_mem_load_bytes"
        )["value"]
        assert second == pytest.approx(2 * first)

    def test_explicit_registry_publish(self):
        report = self._report()  # no global registry installed
        r = MetricsRegistry()
        report.publish(r, run="baseline")
        rec = next(
            rec for rec in r.snapshot() if rec["name"] == "profile_gpu_time_ms"
        )
        assert rec["labels"]["run"] == "baseline"


class TestJsonlSink:
    def test_dump_appends_valid_jsonl(self, tmp_path):
        r = MetricsRegistry()
        r.counter("a", k="1").inc(3)
        r.gauge("b").set(0.5)
        path = tmp_path / "metrics.jsonl"
        assert r.dump_jsonl(path, timestamp=123.0) == 2
        assert r.dump_jsonl(path, timestamp=124.0) == 2  # appends
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 4
        assert {rec["name"] for rec in lines} == {"a", "b"}
        assert all("ts" in rec and "value" in rec for rec in lines)
        assert lines[0]["ts"] == 123.0 and lines[-1]["ts"] == 124.0
