"""SLO monitor: error budgets, burn rates, multi-window alerts, serving."""

import pytest

from repro.bench import BenchConfig, get_dataset
from repro.frameworks import SYSTEMS
from repro.obs.slo import (
    SLO,
    BurnRateAlert,
    BurnRateRule,
    SLOMonitor,
    default_rules,
)
from repro.serve import ServableModel, ServeConfig, serve_trace

CONFIG = BenchConfig(feat_dim=16, max_edges=60_000, seed=7)


def _monitor(objective=0.9, rules=None):
    """One-class monitor: 1 ms target, 10% error budget by default."""
    slo = SLO(klass="full", latency_ms=1.0, objective=objective)
    rules = rules or (
        BurnRateRule(name="r", long_s=1.0, short_s=0.25, factor=5.0),
    )
    return SLOMonitor([slo], rules)


class TestDeclarations:
    def test_budget_is_one_minus_objective(self):
        assert SLO("full", 1.0, objective=0.99).budget == pytest.approx(0.01)

    def test_slo_validates(self):
        with pytest.raises(ValueError):
            SLO("full", 1.0, objective=1.0)
        with pytest.raises(ValueError):
            SLO("full", 0.0)

    def test_rule_validates_windows(self):
        with pytest.raises(ValueError):
            BurnRateRule(name="bad", long_s=0.1, short_s=0.5, factor=2.0)
        with pytest.raises(ValueError):
            BurnRateRule(name="bad", long_s=1.0, short_s=0.5, factor=0.0)

    def test_default_rules_scale_with_duration(self):
        fast, slow = default_rules(24.0)
        assert fast.long_s == pytest.approx(6.0)
        assert fast.short_s == pytest.approx(1.0)
        assert fast.factor > slow.factor  # page faster on hotter burn
        assert slow.long_s == pytest.approx(12.0)
        with pytest.raises(ValueError):
            default_rules(0.0)

    def test_monitor_requires_one_slo(self):
        with pytest.raises(ValueError):
            SLOMonitor([], default_rules(1.0))


class TestBurnRate:
    def test_no_traffic_burns_nothing(self):
        assert _monitor().burn_rate("full", 1.0, now_s=5.0) == 0.0

    def test_bad_fraction_over_budget(self):
        m = _monitor()  # budget 0.1
        for i in range(10):
            m.observe_completion(
                "full", at_s=0.1 * (i + 1),
                latency_ms=2.0 if i < 5 else 0.5, rid=i,
            )
        # 5 of 10 bad: 0.5 / 0.1 = 5x budget
        assert m.burn_rate("full", 1.0, now_s=1.0) == pytest.approx(5.0)

    def test_window_excludes_old_events(self):
        m = _monitor()
        m.observe_completion("full", at_s=0.0, latency_ms=2.0, rid=0)
        m.observe_completion("full", at_s=1.0, latency_ms=0.5, rid=1)
        # a 0.5 s window at t=1.0 sees only the good event
        assert m.burn_rate("full", 0.5, now_s=1.0) == 0.0
        # the full window still sees the bad one
        assert m.burn_rate("full", 2.0, now_s=1.0) == pytest.approx(5.0)

    def test_shed_is_always_bad(self):
        m = _monitor()
        m.observe_shed("full", at_s=0.5, rid=3)
        assert m.burn_rate("full", 1.0, now_s=0.5) == pytest.approx(10.0)

    def test_unknown_class_is_ignored(self):
        m = _monitor()
        assert m.observe_completion("other", at_s=0.0, latency_ms=99.0)
        m.observe_shed("other", at_s=0.0)
        assert not m.alerts

    def test_observe_completion_returns_sla_verdict(self):
        m = _monitor()
        assert m.observe_completion("full", at_s=0.0, latency_ms=1.0)
        assert not m.observe_completion("full", at_s=0.1, latency_ms=1.1)


class TestAlerts:
    def test_fires_at_exact_event_time(self):
        m = _monitor()
        m.observe_completion("full", at_s=0.125, latency_ms=5.0, rid=0)
        assert m.fired
        alert, = m.alerts
        assert alert.fired_at_s == 0.125
        assert alert.klass == "full" and alert.rule == "r"
        assert alert.burn_long >= alert.factor
        assert alert.burn_short >= alert.factor

    def test_edge_triggered_while_condition_holds(self):
        m = _monitor()
        for i in range(5):
            m.observe_completion("full", at_s=0.1 * i, latency_ms=5.0, rid=i)
        assert len(m.alerts) == 1  # still above: no re-fire

    def test_refires_after_recovery(self):
        m = _monitor()
        m.observe_completion("full", at_s=0.1, latency_ms=5.0, rid=0)
        for i in range(8):  # recovery: the burn drops below the factor
            m.observe_completion(
                "full", at_s=0.2 + 0.05 * i, latency_ms=0.5, rid=1 + i
            )
        # much later, a fresh burst: windows hold only the new bad event
        m.observe_completion("full", at_s=10.0, latency_ms=5.0, rid=99)
        assert len(m.alerts) == 2

    def test_requires_both_windows(self):
        # one old bad event: in the long window but outside the short one
        m = _monitor(rules=(
            BurnRateRule(name="r", long_s=10.0, short_s=0.1, factor=5.0),
        ))
        m.observe_completion("full", at_s=0.0, latency_ms=5.0, rid=0)
        m.alerts.clear()  # the event itself fired (both windows held it)
        m.observe_completion("full", at_s=5.0, latency_ms=0.5, rid=1)
        # long window burn: 1 bad / 2 events = 5x >= 5 — but the short
        # window at t=5 holds only the good event, so no alert
        assert m.burn_rate("full", 10.0, 5.0) >= 5.0
        assert not m.alerts

    def test_describe_mentions_class_and_rule(self):
        a = BurnRateAlert(
            klass="full", rule="fast", fired_at_s=0.5,
            burn_long=12.0, burn_short=14.0, factor=10.0,
        )
        text = a.describe()
        assert "[full]" in text and "fast" in text and "10.0x" in text


class TestAttributionAndSummary:
    def test_attribution_splits_shed_from_latency(self):
        m = _monitor()
        m.observe_shed("full", at_s=0.1, rid=1)
        m.observe_shed("full", at_s=0.2, rid=2)
        m.observe_completion("full", at_s=0.3, latency_ms=5.0, rid=3)
        m.observe_completion("full", at_s=0.4, latency_ms=0.5, rid=4)
        att = m.attribution("full", 1.0, now_s=0.4)
        assert att["shed"] == 2 and att["latency"] == 1
        assert att["shed_rids"] == [1, 2]
        assert att["latency_rids"] == [3]

    def test_attribution_caps_exemplars(self):
        m = _monitor()
        for i in range(10):
            m.observe_shed("full", at_s=0.01 * i, rid=i)
        att = m.attribution("full", 1.0, now_s=1.0, exemplars=3)
        assert att["shed"] == 10
        assert att["shed_rids"] == [0, 1, 2]

    def test_summary_budget_accounting(self):
        m = _monitor()  # budget 0.1
        for i in range(9):
            m.observe_completion("full", at_s=0.1 * i, latency_ms=0.5, rid=i)
        m.observe_shed("full", at_s=1.0, rid=9)
        s = m.summary(1.0)
        cls = s["classes"]["full"]
        assert cls["events"] == 10
        assert cls["good"] == 9 and cls["bad_shed"] == 1
        assert cls["bad_fraction"] == pytest.approx(0.1)
        assert cls["budget_used"] == pytest.approx(1.0)  # exactly spent
        assert set(cls["burn_rates"]) == {"r"}
        assert "attribution" in cls and s["alerts"] is not None


class TestServingOverload:
    """Acceptance: under a deterministic seeded trace, the multi-window
    burn-rate alert fires exactly when the offered load exceeds the
    sustainable rate — and stays silent below it."""

    def _serve(self, load, *, slo_factor=2.5, queue_depth=16):
        dataset = get_dataset("CS", CONFIG)
        servable = ServableModel(
            SYSTEMS["TLPGNN"](), "gcn", dataset,
            feat_dim=CONFIG.feat_dim, spec=CONFIG.spec_for(dataset),
            seed=CONFIG.seed,
        )
        offline_s = servable.offline_runtime_s
        # unbatched (max_batch=1, no window) so latency is pure service
        # time: below the sustainable rate every request meets a
        # slo_factor x offline target, above it queueing must blow it
        cfg = ServeConfig(
            rate_hz=load / offline_s, num_requests=120, max_batch=1,
            window_s=0.0, num_streams=2, queue_depth=queue_depth,
            slo_ms=slo_factor * offline_s * 1e3, seed=11,
        )
        return serve_trace(servable, cfg)

    def test_underload_stays_silent(self):
        report = self._serve(0.3, slo_factor=4.0)
        assert report.shed == 0
        assert report.slo["alerts"] == []
        assert report.slo["classes"]["full"]["budget_used"] < 1.0

    def test_overload_fires_multiwindow_alerts(self):
        report = self._serve(6.0, queue_depth=8)
        assert report.shed > 0  # offered load genuinely unsustainable
        alerts = report.slo["alerts"]
        assert alerts, "burn-rate alert must fire under overload"
        assert {a["rule"] for a in alerts} == {"fast", "slow"}
        # every alert carries the exact simulated fire instant and both
        # window burns at/above its factor
        for a in alerts:
            assert a["burn_long"] >= a["factor"]
            assert a["burn_short"] >= a["factor"]
        cls = report.slo["classes"]["full"]
        assert cls["budget_used"] > 1.0  # budget blown
        att = cls["attribution"]
        assert att["shed"] > 0 and att["shed_rids"]

    def test_alert_sequence_is_deterministic(self):
        a = self._serve(6.0, queue_depth=8)
        b = self._serve(6.0, queue_depth=8)
        assert a.slo == b.slo  # bit-identical summaries, alerts included
