"""Profile archive: persistence, fingerprints, and the regression diff."""

import json

import pytest

from repro.bench import BenchConfig, get_dataset, make_features, run_system
from repro.frameworks import SYSTEMS
from repro.obs.archive import (
    SCHEMA_VERSION,
    ProfileArchive,
    Tolerance,
    config_fingerprint,
    diff_runs,
    load_run,
)

CONFIG = BenchConfig(max_edges=60_000, seed=7)


def _report(system="TLPGNN", model="gcn", dataset="CR"):
    ds = get_dataset(dataset, CONFIG)
    X = make_features(ds.graph.num_vertices, CONFIG.feat_dim, seed=CONFIG.seed)
    return run_system(SYSTEMS[system](), model, ds, CONFIG, X=X).report


@pytest.fixture(scope="module")
def report():
    return _report()


class TestFingerprint:
    def test_stable(self):
        a = config_fingerprint(dataset="CR", seed=7, feat_dim=32)
        b = config_fingerprint(dataset="CR", seed=7, feat_dim=32)
        assert a == b

    def test_sensitive_to_every_knob(self):
        base = dict(dataset="CR", seed=7, feat_dim=32, max_edges=1000)
        fp = config_fingerprint(**base)
        for key, value in [
            ("dataset", "RD"), ("seed", 8), ("feat_dim", 64), ("max_edges", 2000),
        ]:
            assert config_fingerprint(**{**base, key: value}) != fp

    def test_sensitive_to_spec(self):
        from repro.gpusim import V100, A100

        a = config_fingerprint(dataset="CR", seed=7, feat_dim=32, spec=V100)
        b = config_fingerprint(dataset="CR", seed=7, feat_dim=32, spec=A100)
        assert a != b


class TestArchive:
    def test_record_and_load_roundtrip(self, tmp_path, report):
        archive = ProfileArchive(tmp_path)
        path = archive.record(
            report, seed=7, feat_dim=32, max_edges=60_000,
        )
        entry = load_run(path)
        assert entry["schema_version"] == SCHEMA_VERSION
        assert entry["config"]["system"] == "TLPGNN"
        assert entry["metrics"] == report.as_dict()

    def test_successive_records_get_distinct_paths(self, tmp_path, report):
        archive = ProfileArchive(tmp_path)
        p0 = archive.record(report, seed=7, feat_dim=32)
        p1 = archive.record(report, seed=7, feat_dim=32)
        assert p0 != p1
        assert archive.runs() == [p0, p1]
        assert archive.latest() == p1

    def test_runs_filter_by_fingerprint(self, tmp_path, report):
        archive = ProfileArchive(tmp_path)
        p0 = archive.record(report, seed=7, feat_dim=32)
        archive.record(report, seed=8, feat_dim=32)
        fp = load_run(p0)["fingerprint"]
        assert archive.runs(fingerprint=fp) == [p0]

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 999, "metrics": {},
                                   "fingerprint": "x"}))
        with pytest.raises(ValueError, match="schema"):
            load_run(bad)

    def test_load_rejects_non_archive_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
        with pytest.raises(ValueError, match="not a profile-archive"):
            load_run(bad)


class TestDiff:
    def _entries(self, tmp_path, report):
        archive = ProfileArchive(tmp_path)
        p0 = archive.record(report, seed=7, feat_dim=32)
        p1 = archive.record(report, seed=7, feat_dim=32)
        return load_run(p0), load_run(p1)

    def test_identical_runs_pass(self, tmp_path, report):
        base, cand = self._entries(tmp_path, report)
        result = diff_runs(base, cand)
        assert result.ok
        assert result.fingerprint_match
        assert not result.regressions
        assert "PASS" in result.render()

    def test_counter_perturbation_flags_the_metric(self, tmp_path, report):
        base, cand = self._entries(tmp_path, report)
        cand["metrics"]["mem_load_bytes"] += 4096
        result = diff_runs(base, cand)
        assert not result.ok
        assert [d.metric for d in result.regressions] == ["mem_load_bytes"]
        assert "mem_load_bytes" in result.render()
        assert "FAIL" in result.render()

    def test_within_tolerance_time_drift_passes(self, tmp_path, report):
        base, cand = self._entries(tmp_path, report)
        cand["metrics"]["runtime_ms"] *= 1.01  # inside the 2% band
        assert diff_runs(base, cand).ok

    def test_beyond_tolerance_time_drift_fails(self, tmp_path, report):
        base, cand = self._entries(tmp_path, report)
        cand["metrics"]["runtime_ms"] *= 1.10
        result = diff_runs(base, cand)
        assert [d.metric for d in result.regressions] == ["runtime_ms"]

    def test_missing_metric_is_a_regression(self, tmp_path, report):
        base, cand = self._entries(tmp_path, report)
        del cand["metrics"]["mem_atomic_store_bytes"]
        result = diff_runs(base, cand)
        assert not result.ok
        assert result.missing_metrics == ["mem_atomic_store_bytes"]

    def test_custom_tolerance_override(self, tmp_path, report):
        base, cand = self._entries(tmp_path, report)
        cand["metrics"]["mem_load_bytes"] += 1
        loose = {"mem_load_bytes": Tolerance(rel=0.5)}
        assert diff_runs(base, cand, tolerances=loose).ok

    def test_fingerprint_mismatch_warns(self, tmp_path, report):
        base, cand = self._entries(tmp_path, report)
        cand["fingerprint"] = "different"
        result = diff_runs(base, cand)
        assert not result.fingerprint_match
        assert "WARNING" in result.render()


class TestEdgeCases:
    def test_empty_archive_has_no_runs_or_latest(self, tmp_path):
        archive = ProfileArchive(tmp_path / "fresh")
        assert archive.runs() == []
        assert archive.latest() is None
        assert archive.latest(fingerprint="anything") is None

    def test_diff_of_empty_metric_sets_passes(self):
        empty = {"fingerprint": "fp", "metrics": {}}
        result = diff_runs(empty, empty)
        assert result.ok
        assert result.deltas == [] and result.missing_metrics == []
        assert "PASS" in result.render()

    def test_string_metrics_are_skipped_not_compared(self):
        base = {"fingerprint": "fp",
                "metrics": {"system": "TLPGNN", "runtime_ms": 1.0}}
        cand = {"fingerprint": "fp",
                "metrics": {"system": "OTHER", "runtime_ms": 1.0}}
        result = diff_runs(base, cand)
        assert result.ok
        assert [d.metric for d in result.deltas] == ["runtime_ms"]

    def test_missing_metric_ignores_tolerance_overrides(self):
        # a metric absent from the candidate is a regression even under
        # an arbitrarily loose tolerance — absence is not drift
        base = {"fingerprint": "fp", "metrics": {"runtime_ms": 1.0}}
        cand = {"fingerprint": "fp", "metrics": {}}
        loose = {"runtime_ms": Tolerance(rel=1e9, abs=1e9)}
        result = diff_runs(base, cand, tolerances=loose)
        assert not result.ok
        assert result.missing_metrics == ["runtime_ms"]
        assert "missing from candidate" in result.render()

    def test_extra_candidate_metrics_are_ignored(self):
        base = {"fingerprint": "fp", "metrics": {"runtime_ms": 1.0}}
        cand = {"fingerprint": "fp",
                "metrics": {"runtime_ms": 1.0, "new_metric": 42.0}}
        assert diff_runs(base, cand).ok

    def test_zero_baseline_rel_delta(self):
        base = {"fingerprint": "fp", "metrics": {"extra_counter": 0.0}}
        cand = {"fingerprint": "fp", "metrics": {"extra_counter": 1.0}}
        result = diff_runs(base, cand)
        delta, = result.deltas
        assert delta.rel_delta == float("inf")
        assert delta.regressed  # 0 -> 1 exceeds any relative band
