"""Span tracer: nesting, exception safety, disabled path, Chrome export."""

import gc
import json

import pytest

from repro.obs.tracer import (
    Span,
    Tracer,
    current_span,
    get_tracer,
    set_tracer,
    span,
)


@pytest.fixture
def tracer():
    t = Tracer()
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


class TestNesting:
    def test_children_attach_to_parent(self, tracer):
        with span("outer") as outer:
            with span("inner.a"):
                pass
            with span("inner.b") as b:
                assert current_span() is b
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [s.name for s in outer.children] == ["inner.a", "inner.b"]
        assert tracer.num_spans == 3

    def test_siblings_after_close(self, tracer):
        with span("first"):
            pass
        with span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_wall_time_is_positive_and_nested(self, tracer):
        with span("outer") as outer, span("inner") as inner:
            pass
        assert outer.closed and inner.closed
        assert outer.wall_seconds >= inner.wall_seconds >= 0.0
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_spans_close_under_exceptions(self, tracer):
        with pytest.raises(ValueError), span("outer"), span("inner"):
            raise ValueError("boom")
        outer, = tracer.roots
        inner, = outer.children
        assert outer.closed and inner.closed
        assert "ValueError: boom" in inner.error
        assert "ValueError: boom" in outer.error
        # the stack fully unwound: new spans are roots again
        assert current_span() is None
        with span("after"):
            pass
        assert [s.name for s in tracer.roots] == ["outer", "after"]

    def test_modeled_time_attribution(self, tracer):
        with span("kernel") as sp:
            sp.add_modeled(0.25)
            sp.add_modeled(0.25)
        assert sp.modeled_seconds == pytest.approx(0.5)

    def test_attrs_via_set(self, tracer):
        with span("k", kernel="spmm") as sp:
            sp.set(num_units=7)
        assert sp.attrs == {"kernel": "spmm", "num_units": 7}


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert get_tracer() is None

    def test_disabled_span_is_a_shared_singleton(self):
        assert get_tracer() is None
        first = span("a")
        second = span("b")
        assert first is second  # no per-call allocation
        with first as sp:
            assert sp is None

    def test_disabled_path_allocates_no_span_objects(self):
        assert get_tracer() is None
        gc.collect()
        before = sum(1 for o in gc.get_objects() if isinstance(o, Span))
        for _ in range(200):
            with span("hot.loop"):
                pass
        gc.collect()
        after = sum(1 for o in gc.get_objects() if isinstance(o, Span))
        assert after == before

    def test_current_span_none_when_disabled(self):
        assert current_span() is None

    def test_disabled_span_is_much_cheaper_than_enabled(self):
        """Micro-benchmark guard: the no-op path must stay a fraction of
        the enabled path's cost (one global load + a shared singleton vs
        allocating and linking a real Span)."""
        import timeit

        assert get_tracer() is None

        def hot():
            with span("hot", k="v"):
                pass

        n = 20_000
        t_off = min(timeit.repeat(hot, number=n, repeat=5))
        t = Tracer()
        previous = set_tracer(t)
        try:
            t_on = min(timeit.repeat(hot, number=n, repeat=5))
        finally:
            set_tracer(previous)
        # generous 2x bound: the real gap is ~10x, but CI boxes are noisy
        assert t_off < t_on / 2, (
            f"disabled span path too slow: {t_off:.4f}s vs enabled "
            f"{t_on:.4f}s over {n} spans"
        )

    def test_set_tracer_returns_previous(self):
        t = Tracer()
        assert set_tracer(t) is None
        assert set_tracer(None) is t
        assert get_tracer() is None


class TestChromeExport:
    def _events(self, tracer):
        events = tracer.to_chrome_trace()
        # must round-trip through JSON (the file format)
        return json.loads(json.dumps(events))

    def test_required_keys_present(self, tracer):
        with span("outer", system="TLPGNN"), span("inner"):
            pass
        for ev in self._events(tracer):
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in ev, f"{ev} missing {key}"

    def test_complete_events_and_durations(self, tracer):
        with span("outer"), span("inner"):
            pass
        events = [e for e in self._events(tracer) if e["ph"] == "X"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        outer, inner = events
        assert outer["dur"] >= inner["dur"] >= 0
        assert outer["ts"] <= inner["ts"]

    def test_timestamps_monotonic_per_track(self, tracer):
        for i in range(5):
            with span(f"s{i}"):
                pass
        events = [e for e in self._events(tracer) if e["ph"] == "X"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert all(t >= 0 for t in ts)

    def test_modeled_time_and_attrs_exported_as_args(self, tracer):
        with span("k", kernel="spmm") as sp:
            sp.add_modeled(0.001)
        ev = next(e for e in self._events(tracer) if e["ph"] == "X")
        assert ev["args"]["kernel"] == "spmm"
        assert ev["args"]["modeled_ms"] == pytest.approx(1.0)

    def test_open_spans_not_exported(self):
        t = Tracer()
        cm = t.span("never.closed")
        cm.__enter__()
        assert all(e["ph"] != "X" for e in t.to_chrome_trace())


class TestRunSystemIntegration:
    def test_run_system_bit_identical_with_tracing_on_and_off(self):
        import numpy as np

        from repro.bench import BenchConfig, get_dataset, make_features, run_system
        from repro.frameworks import SYSTEMS

        config = BenchConfig(max_edges=60_000, seed=7)
        dataset = get_dataset("CR", config)
        X = make_features(dataset.graph.num_vertices, config.feat_dim, seed=7)

        off = run_system(SYSTEMS["TLPGNN"](), "gcn", dataset, config, X=X)
        t = Tracer()
        previous = set_tracer(t)
        try:
            on = run_system(SYSTEMS["TLPGNN"](), "gcn", dataset, config, X=X)
        finally:
            set_tracer(previous)
        assert np.array_equal(off.output, on.output)
        assert off.report.as_dict() == on.report.as_dict()
        # and the traced run produced the expected span structure
        names = [s.name for s in t.walk()]
        assert "bench.run_system" in names
        assert "TLPGNN.pipeline" in names
        assert "kernel.run" in names and "kernel.analyze" in names
