"""Trend store: trajectory points, directional policies, regression gate."""

import json

import pytest

from repro.obs.archive import Tolerance
from repro.obs.trend import (
    DEFAULT_POLICIES,
    TREND_SCHEMA_VERSION,
    MetricPolicy,
    TrendStore,
    git_rev,
    policy_for,
)


def _store(tmp_path, name="BENCH_serving.json"):
    return TrendStore(tmp_path / name)


class TestGitRev:
    def test_repo_head_is_a_short_hash(self):
        rev = git_rev(".")
        assert rev != "unknown"
        assert 4 <= len(rev) <= 40
        int(rev, 16)  # hex

    def test_non_repo_is_unknown_not_an_error(self, tmp_path):
        assert git_rev(tmp_path) == "unknown"


class TestStoreRoundTrip:
    def test_absent_file_loads_empty_skeleton(self, tmp_path):
        store = _store(tmp_path)
        doc = store.load()
        assert doc["schema_version"] == TREND_SCHEMA_VERSION
        assert doc["name"] == "serving"  # BENCH_ prefix stripped
        assert doc["points"] == []
        assert store.latest() is None

    def test_record_appends_and_reloads(self, tmp_path):
        store = _store(tmp_path)
        p0 = store.record(
            {"p99_ms": 1.5, "completed": 96}, fingerprint="fp",
            rev="abc1234", timestamp=100.0, meta={"dataset": "CR"},
        )
        p1 = store.record(
            {"p99_ms": 1.4, "completed": 96}, fingerprint="fp",
            rev="def5678", timestamp=200.0,
        )
        assert p0["rev"] == "abc1234" and p0["meta"] == {"dataset": "CR"}
        reloaded = TrendStore(store.path)
        assert [p["rev"] for p in reloaded.points()] == [
            "abc1234", "def5678",
        ]
        assert reloaded.latest()["metrics"]["p99_ms"] == 1.4
        assert p1["recorded_unix"] == 200.0

    def test_points_scope_by_fingerprint(self, tmp_path):
        # CI's small-scale points never compare against full-scale ones
        store = _store(tmp_path)
        store.record({"p99_ms": 1.0}, fingerprint="ci", rev="a", timestamp=1.0)
        store.record({"p99_ms": 9.0}, fingerprint="dev", rev="b", timestamp=2.0)
        assert len(store.points()) == 2
        assert store.latest(fingerprint="ci")["metrics"]["p99_ms"] == 1.0
        assert store.points(fingerprint="nope") == []
        assert (
            store.compare({"p99_ms": 1.0}, fingerprint="nope", rev="c")
            is None
        )

    def test_record_rejects_non_numeric_metrics(self, tmp_path):
        store = _store(tmp_path)
        with pytest.raises(TypeError, match="numeric"):
            store.record({"name": "TLPGNN"}, fingerprint="fp")
        with pytest.raises(TypeError, match="numeric"):
            store.record({"flag": True}, fingerprint="fp")

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema_version": 999, "points": []}))
        with pytest.raises(ValueError, match="schema"):
            TrendStore(path).load()

    def test_load_rejects_non_store_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema_version": TREND_SCHEMA_VERSION}))
        with pytest.raises(ValueError, match="not a trend store"):
            TrendStore(path).load()


class TestPolicies:
    def test_lower_better_directionality(self):
        p = MetricPolicy(Tolerance(rel=0.05), better="lower")
        assert p.classify(1.0, 1.01) == "ok"        # inside the band
        assert p.classify(1.0, 1.2) == "regressed"  # slower
        assert p.classify(1.0, 0.7) == "improved"   # faster

    def test_higher_better_directionality(self):
        p = MetricPolicy(Tolerance(rel=0.05), better="higher")
        assert p.classify(100.0, 96.0) == "ok"
        assert p.classify(100.0, 80.0) == "regressed"
        assert p.classify(100.0, 130.0) == "improved"

    def test_both_regresses_either_direction(self):
        p = MetricPolicy(Tolerance(), better="both")
        assert p.classify(96.0, 96.0) == "ok"
        assert p.classify(96.0, 95.0) == "regressed"
        assert p.classify(96.0, 97.0) == "regressed"

    def test_policy_for_exact_then_suffix_then_fallback(self):
        assert policy_for("p99_ms").better == "lower"
        # probe metrics like TLPGNN_CR_runtime_ms inherit the suffix policy
        assert policy_for("TLPGNN_CR_runtime_ms").better == "lower"
        assert policy_for("offline_throughput_rps").better == "higher"
        assert policy_for("mystery_metric").better == "both"

    def test_default_policies_cover_probe_metrics(self):
        for name in ("p50_ms", "p99_ms", "throughput_rps", "speedup",
                     "completed", "shed"):
            assert name in DEFAULT_POLICIES


class TestCompare:
    def _record(self, tmp_path, **metrics):
        store = _store(tmp_path)
        base = {
            "p99_ms": 2.0, "throughput_rps": 500.0, "completed": 96.0,
        }
        base.update(metrics)
        store.record(base, fingerprint="fp", rev="base123", timestamp=1.0)
        return store

    def test_identical_metrics_pass(self, tmp_path):
        store = self._record(tmp_path)
        diff = store.compare(
            {"p99_ms": 2.0, "throughput_rps": 500.0, "completed": 96.0},
            fingerprint="fp", rev="head456",
        )
        assert diff.ok and not diff.regressions
        text = diff.render()
        assert "PASS" in text
        assert "base123" in text and "head456" in text

    def test_injected_slowdown_regresses(self, tmp_path):
        store = self._record(tmp_path)
        diff = store.compare(
            {"p99_ms": 2.5, "throughput_rps": 500.0, "completed": 96.0},
            fingerprint="fp", rev="head456",
        )
        assert not diff.ok
        assert [d.metric for d in diff.regressions] == ["p99_ms"]
        assert "FAIL" in diff.render() and "p99_ms" in diff.render()

    def test_latency_improvement_is_not_a_regression(self, tmp_path):
        store = self._record(tmp_path)
        diff = store.compare(
            {"p99_ms": 1.0, "throughput_rps": 500.0, "completed": 96.0},
            fingerprint="fp", rev="head456",
        )
        assert diff.ok
        assert [d.metric for d in diff.improvements] == ["p99_ms"]
        assert "re-recording" in diff.render()  # nudge to move the baseline

    def test_throughput_drop_regresses(self, tmp_path):
        store = self._record(tmp_path)
        diff = store.compare(
            {"p99_ms": 2.0, "throughput_rps": 400.0, "completed": 96.0},
            fingerprint="fp", rev="head456",
        )
        assert [d.metric for d in diff.regressions] == ["throughput_rps"]

    def test_missing_metric_regresses(self, tmp_path):
        store = self._record(tmp_path)
        diff = store.compare(
            {"p99_ms": 2.0, "throughput_rps": 500.0},
            fingerprint="fp", rev="head456",
        )
        assert not diff.ok
        assert diff.missing_metrics == ["completed"]
        assert "missing at HEAD" in diff.render()

    def test_compare_uses_latest_matching_point(self, tmp_path):
        store = self._record(tmp_path)
        store.record(
            {"p99_ms": 3.0, "throughput_rps": 500.0, "completed": 96.0},
            fingerprint="fp", rev="newer99", timestamp=2.0,
        )
        diff = store.compare(
            {"p99_ms": 3.0, "throughput_rps": 500.0, "completed": 96.0},
            fingerprint="fp", rev="head456",
        )
        assert diff.ok and diff.baseline_rev == "newer99"
