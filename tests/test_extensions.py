"""Extensions beyond the paper's evaluation: multi-head GAT, heterogeneous
graphs / R-GCN, and degree-sequence sampling."""

import numpy as np
import pytest

from repro.graph import HeteroGraph, erdos_renyi, random_hetero, sample_degree_sequence
from repro.graph.datasets import DATASETS
from repro.kernels import TLPGNNKernel
from repro.models import (
    GATLayer,
    MultiHeadGATLayer,
    RGCNLayer,
    build_rgcn_convs,
    reference_aggregate,
)


class TestMultiHeadGAT:
    def test_concat_shape(self, small_random, rng):
        layer = MultiHeadGATLayer.init(8, 4, 3, rng)
        X = rng.standard_normal((small_random.num_vertices, 8), dtype=np.float32)
        out = layer.forward(small_random, X)
        assert out.shape == (small_random.num_vertices, 12)

    def test_mean_shape(self, small_random, rng):
        layer = MultiHeadGATLayer.init(8, 4, 3, rng, combine="mean")
        X = rng.standard_normal((small_random.num_vertices, 8), dtype=np.float32)
        assert layer.forward(small_random, X).shape == (
            small_random.num_vertices, 4,
        )

    def test_single_head_matches_gat(self, small_random, rng):
        head = GATLayer.init(8, 4, rng)
        multi = MultiHeadGATLayer(heads=[head])
        X = rng.standard_normal((small_random.num_vertices, 8), dtype=np.float32)
        np.testing.assert_allclose(
            multi.forward(small_random, X), head.forward(small_random, X)
        )

    def test_head_workloads_run_on_fused_kernel(self, small_random, rng):
        layer = MultiHeadGATLayer.init(8, 16, 2, rng)
        X = rng.standard_normal((small_random.num_vertices, 8), dtype=np.float32)
        kernel = TLPGNNKernel()
        for wl in layer.head_workloads(small_random, X):
            stats, _ = kernel.analyze(wl)
            assert stats.atomic_ops == 0  # still one fused atomic-free kernel

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            MultiHeadGATLayer(heads=[])
        with pytest.raises(ValueError):
            MultiHeadGATLayer.init(4, 4, 1, rng, combine="sum")


class TestHeteroGraph:
    @pytest.fixture
    def hetero(self):
        return random_hetero(50, {"cites": 200, "authors": 150}, seed=1)

    def test_construction(self, hetero):
        assert hetero.num_vertices == 50
        assert hetero.num_edges == 350
        assert set(hetero.relation_names) == {"cites", "authors"}

    def test_vertex_space_validated(self):
        g1 = erdos_renyi(10, 20, seed=0)
        g2 = erdos_renyi(11, 20, seed=0)
        with pytest.raises(ValueError, match="vertices"):
            HeteroGraph(num_vertices=10, relations={"a": g1, "b": g2})

    def test_needs_relations(self):
        with pytest.raises(ValueError, match="relation"):
            HeteroGraph(num_vertices=5, relations={})

    def test_merged_union(self, hetero):
        merged = hetero.merged()
        assert merged.num_edges == hetero.num_edges
        assert merged.num_vertices == 50

    def test_rgcn_layer_matches_manual(self, hetero, rng):
        X = rng.standard_normal((50, 8), dtype=np.float32)
        layer = RGCNLayer.init(hetero, 8, 4, rng)
        out = layer.forward(hetero, X, activation=False)
        manual = X @ layer.w_self
        for name, wl in build_rgcn_convs(hetero, X).items():
            manual = manual + reference_aggregate(wl) @ layer.w_rel[name]
        np.testing.assert_allclose(out, manual, rtol=1e-4, atol=1e-5)

    def test_per_relation_kernels_atomic_free(self, hetero, rng):
        X = rng.standard_normal((50, 16), dtype=np.float32)
        kernel = TLPGNNKernel()
        for wl in build_rgcn_convs(hetero, X).values():
            out = kernel.run(wl)
            np.testing.assert_allclose(
                out, reference_aggregate(wl), rtol=1e-4, atol=1e-5
            )
            stats, _ = kernel.analyze(wl)
            assert stats.atomic_ops == 0


class TestDegreeSequences:
    def test_sums_to_edge_count(self):
        for abbr in ("CS", "PI", "RD"):
            d = sample_degree_sequence(abbr, scale=0.01 if abbr == "RD" else 1.0)
            spec = DATASETS[abbr]
            expected = spec.num_edges * (0.01 if abbr == "RD" else 1.0)
            assert d.sum() == pytest.approx(expected, rel=0.01)

    def test_full_size_cheap(self):
        d = sample_degree_sequence("RD")
        assert d.size == 232_000
        assert d.sum() == 114_000_000

    def test_hub_cap_respected(self):
        d = sample_degree_sequence("RD")
        assert d.max() <= 21_657 * 1.5

    def test_matches_generator_distribution(self):
        """The multinomial shortcut and the edge-level generator agree on
        the degree distribution (same family, same parameters)."""
        from repro.graph import load_dataset

        ds = load_dataset("PI", max_edges=200_000)
        d_fast = sample_degree_sequence("PI", scale=ds.scale)
        d_real = ds.graph.in_degrees
        assert d_fast.sum() == d_real.sum()
        assert np.quantile(d_fast, 0.99) == pytest.approx(
            np.quantile(d_real, 0.99), rel=0.25
        )

    def test_validation(self):
        with pytest.raises(KeyError):
            sample_degree_sequence("XX")
        with pytest.raises(ValueError):
            sample_degree_sequence("CS", scale=0.0)

    def test_regular_ish_family(self):
        d = sample_degree_sequence("OA")
        assert d.sum() == 1_100_000
        assert d.std() / d.mean() < 1.0
