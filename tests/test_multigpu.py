"""Distributed convolution: correctness vs single device, accounting."""

import numpy as np
import pytest

from repro.graph import erdos_renyi, partition_kway
from repro.models import build_conv, reference_aggregate
from repro.models.convspec import ConvWorkload
from repro.multigpu import distribute_conv


@pytest.fixture
def setup(rng):
    g = erdos_renyi(200, 1400, seed=2)
    X = rng.standard_normal((200, 16), dtype=np.float32)
    return g, X


class TestCorrectness:
    def test_unweighted_sum_matches(self, setup):
        g, X = setup
        wl = ConvWorkload(graph=g, X=X, reduce="sum")
        expected = reference_aggregate(wl)
        for k in (1, 2, 4):
            res = distribute_conv(g, X, k)
            np.testing.assert_allclose(res.output, expected, rtol=1e-3, atol=1e-4)

    def test_gcn_norm_factorized(self, setup):
        g, X = setup
        expected = reference_aggregate(build_conv("gcn", g, X))
        deg = g.in_degrees.astype(np.float64) + 1.0
        inv = (1.0 / np.sqrt(deg)).astype(np.float32)
        res = distribute_conv(g, X, 3, src_scale=inv, dst_scale=inv)
        # add the (local) self-loop term
        out = res.output + X / deg[:, None].astype(np.float32)
        np.testing.assert_allclose(out, expected, rtol=1e-3, atol=1e-4)

    def test_custom_partition(self, setup):
        g, X = setup
        part = partition_kway(g, 2, seed=9)
        wl = ConvWorkload(graph=g, X=X, reduce="sum")
        res = distribute_conv(g, X, 2, partition=part)
        np.testing.assert_allclose(
            res.output, reference_aggregate(wl), rtol=1e-3, atol=1e-4
        )

    def test_partition_k_checked(self, setup):
        g, X = setup
        part = partition_kway(g, 2)
        with pytest.raises(ValueError, match="partition.k"):
            distribute_conv(g, X, 3, partition=part)

    def test_x_shape_checked(self, setup):
        g, _ = setup
        with pytest.raises(ValueError, match="rows"):
            distribute_conv(g, np.ones((5, 4), np.float32), 2)


class TestAccounting:
    def test_shards_cover_vertices(self, setup):
        g, X = setup
        res = distribute_conv(g, X, 4)
        covered = np.concatenate([s.local_vertices for s in res.shards])
        assert np.array_equal(np.sort(covered), np.arange(g.num_vertices))

    def test_halo_bytes_match_shards(self, setup):
        g, X = setup
        res = distribute_conv(g, X, 4)
        expected = sum(s.num_halo for s in res.shards) * 16 * 4
        assert res.halo_bytes == expected
        assert res.exchange_seconds == pytest.approx(res.halo_bytes / 50e9)

    def test_single_device_no_halo(self, setup):
        g, X = setup
        res = distribute_conv(g, X, 1)
        assert res.halo_bytes == 0
        assert res.num_devices == 1
        assert res.load_balance == pytest.approx(1.0)

    def test_critical_path_is_max(self, setup):
        g, X = setup
        res = distribute_conv(g, X, 4)
        assert res.conv_seconds == max(s.gpu_seconds for s in res.shards)
        assert res.total_seconds >= res.conv_seconds

    def test_more_devices_less_local_work(self, setup):
        g, X = setup
        one = distribute_conv(g, X, 1)
        four = distribute_conv(g, X, 4)
        assert max(s.local_graph.num_edges for s in four.shards) < (
            one.shards[0].local_graph.num_edges
        )


class TestHaloExchange:
    """ISSUE 2 satellite: pin the halo-exchange accounting contract."""

    @pytest.mark.parametrize("feat_dim", [8, 16, 48])
    def test_one_feature_row_per_halo_vertex(self, rng, feat_dim):
        # exchange volume is exactly one float32 feature row per halo
        # vertex per device — nothing per-edge, nothing double-counted
        g = erdos_renyi(200, 1400, seed=2)
        X = rng.standard_normal((200, feat_dim), dtype=np.float32)
        res = distribute_conv(g, X, 3)
        assert res.halo_bytes == sum(s.num_halo for s in res.shards) * feat_dim * 4

    def test_halo_sets_match_partition_cut(self, setup):
        # recompute each device's halo set independently from the
        # partition assignment and the global edge list
        g, X = setup
        part = partition_kway(g, 4, seed=3)
        res = distribute_conv(g, X, 4, partition=part)
        src, dst = g.edge_list()
        for shard in res.shards:
            inbound = src[part.assignment[dst] == shard.device]
            expected = np.unique(
                inbound[part.assignment[inbound] != shard.device]
            )
            np.testing.assert_array_equal(shard.halo_vertices, expected)
        expected_bytes = sum(
            np.unique(
                src[
                    (part.assignment[dst] == dev)
                    & (part.assignment[src] != dev)
                ]
            ).size
            for dev in range(4)
        ) * X.shape[1] * 4
        assert res.halo_bytes == expected_bytes

    def test_halo_disjoint_from_local(self, setup):
        g, X = setup
        res = distribute_conv(g, X, 4)
        for shard in res.shards:
            assert not np.intersect1d(
                shard.halo_vertices, shard.local_vertices
            ).size

    def test_k1_equals_single_gpu_kernel(self, setup):
        # one device: same output and same device time as running the
        # TLPGNN kernel directly on the full graph
        from repro.gpusim.config import V100
        from repro.kernels.tlpgnn import TLPGNNKernel

        g, X = setup
        res = distribute_conv(g, X, 1)
        direct = TLPGNNKernel().execute(
            ConvWorkload(graph=g, X=X, reduce="sum"), V100
        )
        np.testing.assert_allclose(
            res.output, direct.output, rtol=1e-5, atol=1e-6
        )
        assert res.conv_seconds == direct.timing.gpu_seconds
        assert res.total_seconds == res.conv_seconds  # no exchange term
