"""Shared fixtures: small graphs and workloads every suite reuses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, chain, erdos_renyi, from_edge_list, power_law, star
from repro.models import build_conv
from repro.models.convspec import ConvWorkload
from repro.plan import get_plan_cache


@pytest.fixture(autouse=True)
def _fresh_plan_cache():
    """Isolate tests from the process-global plan cache (and vice versa)."""
    cache = get_plan_cache()
    if cache is not None:
        cache.clear()
    yield
    cache = get_plan_cache()
    if cache is not None:
        cache.clear()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """The paper's Figure 1 example: B, C, D -> A plus a few extra edges."""
    src = [1, 2, 3, 0, 2, 3]
    dst = [0, 0, 0, 1, 1, 2]
    return from_edge_list(src, dst, 4, name="fig1")


@pytest.fixture
def small_random() -> CSRGraph:
    return erdos_renyi(60, 300, seed=3, name="small_random")


@pytest.fixture
def skewed_graph() -> CSRGraph:
    return power_law(80, 600, exponent=2.1, seed=5, name="skewed")


@pytest.fixture
def chain_graph() -> CSRGraph:
    return chain(32)


@pytest.fixture
def star_graph() -> CSRGraph:
    return star(33)


def make_workload(
    graph: CSRGraph,
    model: str = "gcn",
    feat_dim: int = 16,
    seed: int = 0,
) -> ConvWorkload:
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((graph.num_vertices, feat_dim), dtype=np.float32)
    return build_conv(model, graph, X, rng=rng)


@pytest.fixture
def gcn_workload(small_random) -> ConvWorkload:
    return make_workload(small_random, "gcn", 16)


@pytest.fixture
def gat_workload(small_random) -> ConvWorkload:
    return make_workload(small_random, "gat", 16)
