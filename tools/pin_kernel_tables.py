"""Pin the hand-declared kernel effect/access tables to a JSON fixture.

Run once, against the tree *before* kernels switch to derived tables:

    PYTHONPATH=src python tools/pin_kernel_tables.py

The output (tests/data/table_equivalence.json) is the ground truth the
one-time equivalence suite (tests/mp/test_table_equivalence.py) compares
the spec-derived tables against.  The fixture is committed; this script
stays only as provenance of how it was produced.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.bench.harness import BenchConfig, get_dataset, make_features
from repro.kernels.edge_centric import EdgeCentricKernel
from repro.kernels.edge_parallel_warp import EdgeParallelWarpKernel
from repro.kernels.fusion import three_kernel_gat_access
from repro.kernels.neighbor_group import NeighborGroupKernel
from repro.kernels.pull_cta import PullCTAKernel
from repro.kernels.pull_thread import PullThreadKernel
from repro.kernels.push import PushKernel
from repro.kernels.tlpgnn import TLPGNNKernel
from repro.models import build_conv

KERNELS = {
    "tlpgnn_default": lambda: TLPGNNKernel(),
    "tlpgnn_software_nrc": lambda: TLPGNNKernel(
        assignment="software", register_cache=False
    ),
    "tlpgnn_g16": lambda: TLPGNNKernel(group_size=16, assignment="static"),
    "pull_thread": lambda: PullThreadKernel(),
    "pull_cta": lambda: PullCTAKernel(),
    "pull_cta_w8": lambda: PullCTAKernel(warps_per_block=8),
    "push": lambda: PushKernel(),
    "edge_centric": lambda: EdgeCentricKernel(),
    "neighbor_group_gs3": lambda: NeighborGroupKernel(group_size=3),
    "edge_parallel_warp": lambda: EdgeParallelWarpKernel(),
}

MODELS = ("gcn", "gin", "sage", "gat")


def to_jsonable(obj):
    if dataclasses.is_dataclass(obj):
        return {
            k: to_jsonable(v)
            for k, v in dataclasses.asdict(obj).items()
        }
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    return obj


def main() -> None:
    config = BenchConfig(max_edges=60_000)
    ds = get_dataset("CR", config)
    g = ds.graph
    X = make_features(g.num_vertices, 48, seed=0)

    cells = {}
    for model in MODELS:
        w = build_conv(model, g, X, rng=np.random.default_rng(0))
        per_kernel = {}
        for kname, make in KERNELS.items():
            k = make()
            if not k.supports(w):
                continue
            per_kernel[kname] = {
                "effects": to_jsonable(k.effects(w)),
                "access": to_jsonable(k.access_patterns(w)),
            }
        cells[model] = per_kernel

    gat_w = build_conv("gat", g, X, rng=np.random.default_rng(0))
    softmax = {
        key: to_jsonable(acc)
        for key, acc in three_kernel_gat_access(gat_w).items()
    }
    softmax_alpha = {
        key: to_jsonable(acc)
        for key, acc in three_kernel_gat_access(
            gat_w, alpha="edge_vals"
        ).items()
    }

    out = {
        "dataset": "CR",
        "max_edges": 60_000,
        "feat_dim": 48,
        "cells": cells,
        "softmax_stages": softmax,
        "softmax_stages_alpha_edge_vals": softmax_alpha,
    }
    path = Path(__file__).resolve().parents[1] / "tests" / "data"
    path.mkdir(parents=True, exist_ok=True)
    target = path / "table_equivalence.json"
    target.write_text(json.dumps(out, indent=1, sort_keys=True) + "\n")
    print(f"wrote {target} ({target.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
